// vltguard: the typed error taxonomy, per-cell fault isolation in the
// campaign engine, retry/fail-fast/cycle-budget policies, the resume
// journal, and graceful result-cache degradation (docs/ERRORS.md).
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "common/error.hpp"
#include "machine/simulator.hpp"
#include "workloads/fault_injection.hpp"
#include "workloads/workload.hpp"

namespace vlt {
namespace {

namespace fs = std::filesystem;
using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::RunKey;
using campaign::RunSet;
using campaign::SweepSpec;
using machine::MachineConfig;
using machine::RunResult;
using machine::RunStatus;
using machine::Simulator;
using workloads::Variant;

// --- SimError / status taxonomy --------------------------------------------

TEST(SimError, CarriesKindLocationAndMessage) {
  try {
    VLT_FAIL(ErrorKind::kTimeout, "budget blown");
    FAIL() << "VLT_FAIL did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTimeout);
    EXPECT_NE(std::string(e.file()).find("test_guard.cpp"),
              std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_EQ(e.message(), "budget blown");
    // what() is the file:line-prefixed form the CLIs print.
    std::string what = e.what();
    EXPECT_NE(what.find("test_guard.cpp"), std::string::npos);
    EXPECT_NE(what.find("budget blown"), std::string::npos);
  }
}

TEST(SimError, VltCheckThrowsInvariant) {
  try {
    VLT_CHECK(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "VLT_CHECK did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvariant);
  }
}

TEST(RunStatusNames, RoundTripAndErrorMapping) {
  for (RunStatus s :
       {RunStatus::kOk, RunStatus::kWorkloadVerify, RunStatus::kInvariant,
        RunStatus::kConfig, RunStatus::kTimeout, RunStatus::kIo,
        RunStatus::kWorker, RunStatus::kSkipped}) {
    std::optional<RunStatus> back =
        machine::run_status_from_name(machine::run_status_name(s));
    ASSERT_TRUE(back.has_value()) << machine::run_status_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(machine::run_status_from_name("no-such-status").has_value());
  EXPECT_EQ(machine::run_status_from_error(ErrorKind::kTimeout),
            RunStatus::kTimeout);
  EXPECT_EQ(machine::run_status_from_error(ErrorKind::kConfig),
            RunStatus::kConfig);
}

TEST(RunResultJson, V1EntriesParseWithDerivedStatus) {
  // A schema-v1 cache entry has `verified`/`verify_error` but no
  // `status`/`attempts`; from_json derives them.
  std::optional<Json> ok = Json::parse(
      R"({"workload":"w","config":"c","variant":"v","verified":true,)"
      R"("cycles":10})");
  ASSERT_TRUE(ok.has_value());
  std::optional<RunResult> r = RunResult::from_json(*ok);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, RunStatus::kOk);
  EXPECT_EQ(r->attempts, 1u);

  std::optional<Json> bad = Json::parse(
      R"({"workload":"w","config":"c","variant":"v","verified":false,)"
      R"("verify_error":"mismatch at 0x10","cycles":10})");
  ASSERT_TRUE(bad.has_value());
  r = RunResult::from_json(*bad);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, RunStatus::kWorkloadVerify);
  EXPECT_EQ(r->error, "mismatch at 0x10");
}

// --- fault injectors, one per error class ----------------------------------

TEST(FaultInjection, VerifyInjectorFailsTheGoldenCheck) {
  auto w = workloads::make_workload("fault.verify");
  RunResult r = Simulator(MachineConfig::base()).run(*w, Variant::base());
  EXPECT_EQ(r.status, RunStatus::kWorkloadVerify);
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("injected"), std::string::npos);
}

TEST(FaultInjection, InvariantInjectorTripsAProcessorCheck) {
  auto w = workloads::make_workload("fault.invariant");
  EXPECT_SIM_ERROR((void)Simulator(MachineConfig::base())
                       .run(*w, Variant::base()),
                   "serial phase");
}

TEST(FaultInjection, BarrierInjectorTimesOutWithDiagnostic) {
  MachineConfig cfg = MachineConfig::v4_cmt();
  cfg.cycle_limit = 20'000;
  auto w = workloads::make_workload("fault.barrier");
  try {
    (void)Simulator(cfg).run(*w, Variant::lane_threads(4));
    FAIL() << "stuck barrier did not time out";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTimeout);
    std::string msg = e.message();
    EXPECT_NE(msg.find("20000-cycle budget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck-barrier"), std::string::npos) << msg;  // label
    EXPECT_NE(msg.find("pc="), std::string::npos) << msg;
    EXPECT_NE(msg.find("1/4 arrivals"), std::string::npos) << msg;
  }
}

TEST(FaultInjection, NamesResolveButStayOutOfTheRegistryList) {
  for (const std::string& name : workloads::fault_workload_names()) {
    EXPECT_NE(workloads::find_workload(name), nullptr) << name;
    for (const std::string& listed : workloads::workload_names())
      EXPECT_NE(listed, name);
  }
  EXPECT_EQ(workloads::find_workload("no-such-app"), nullptr);
}

// --- campaign fault isolation ----------------------------------------------

/// One healthy cell on each side of a failing one.
SweepSpec faulty_spec() {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  spec.add(MachineConfig::base(), "fault.verify", Variant::base());
  spec.add(MachineConfig::base(), "mpenc", Variant::base());
  return spec;
}

TEST(CampaignGuard, FaultingCellDoesNotKillTheSweep) {
  CampaignOptions opts;
  opts.threads = 2;
  RunSet set = Campaign(opts).run(faulty_spec());
  ASSERT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.at(0).ok());
  EXPECT_EQ(set.at(1).status, RunStatus::kWorkloadVerify);
  EXPECT_TRUE(set.at(2).ok());
  EXPECT_FALSE(set.all_ok());
  EXPECT_EQ(set.failures(), 1u);
}

TEST(CampaignGuard, InvariantAndTimeoutLandInTheCellResult) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "fault.invariant", Variant::base());
  spec.add(MachineConfig::v4_cmt(), "fault.barrier",
           Variant::lane_threads(4));
  CampaignOptions opts;
  opts.threads = 2;
  opts.cell_cycle_limit = 20'000;
  RunSet set = Campaign(opts).run(spec);
  EXPECT_EQ(set.at(0).status, RunStatus::kInvariant);
  EXPECT_NE(set.at(0).error.find("serial phase"), std::string::npos);
  EXPECT_EQ(set.at(1).status, RunStatus::kTimeout);
  EXPECT_NE(set.at(1).error.find("cycle budget"), std::string::npos);
}

TEST(CampaignGuard, RetriesCountAttempts) {
  CampaignOptions opts;
  opts.threads = 1;
  opts.max_retries = 2;
  RunSet set = Campaign(opts).run(faulty_spec());
  EXPECT_EQ(set.at(0).attempts, 1u);  // ok first try
  EXPECT_EQ(set.at(1).attempts, 3u);  // 1 + 2 retries, still failing
  EXPECT_EQ(set.at(1).status, RunStatus::kWorkloadVerify);
}

TEST(CampaignGuard, FailFastSkipsRemainingCells) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "fault.verify", Variant::base());
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  spec.add(MachineConfig::base(), "mpenc", Variant::base());
  CampaignOptions opts;
  opts.threads = 1;  // deterministic claim order
  opts.fail_fast = true;
  RunSet set = Campaign(opts).run(spec);
  EXPECT_EQ(set.at(0).status, RunStatus::kWorkloadVerify);
  EXPECT_EQ(set.at(1).status, RunStatus::kSkipped);
  EXPECT_EQ(set.at(2).status, RunStatus::kSkipped);
  EXPECT_EQ(set.at(1).attempts, 0u);
  // Skipped cells still carry their identity for the report.
  EXPECT_EQ(set.at(1).workload, "multprec");
}

TEST(CampaignGuard, UnknownWorkloadFailsItsCellOnly) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "no-such-app", Variant::base());
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  CampaignOptions opts;
  opts.threads = 1;
  RunSet set = Campaign(opts).run(spec);
  EXPECT_EQ(set.at(0).status, RunStatus::kConfig);
  EXPECT_NE(set.at(0).error.find("unknown workload"), std::string::npos);
  EXPECT_TRUE(set.at(1).ok());
}

TEST(CampaignGuard, DuplicateCellStillThrowsBeforeRunning) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  EXPECT_SIM_ERROR((void)Campaign().run(spec), "duplicate sweep cell");
}

// --- temp-dir fixture for cache/journal tests ------------------------------

class GuardFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps concurrent ctest processes apart: heap addresses
    // alone collide under sanitizer allocators, which are near-
    // deterministic across identical processes.
    dir_ = fs::temp_directory_path() /
           ("vltguard-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(GuardFsTest, FailedResultsAreNeverCached) {
  CampaignOptions opts;
  opts.threads = 1;
  opts.cache_dir = (dir_ / "cache").string();
  RunSet cold = Campaign(opts).run(faulty_spec());
  EXPECT_EQ(cold.cache_hits(), 0u);

  RunSet warm = Campaign(opts).run(faulty_spec());
  // The two healthy cells hit; the faulty one re-simulates every time.
  EXPECT_EQ(warm.cache_hits(), 2u);
  EXPECT_EQ(warm.cache_misses(), 1u);
  EXPECT_EQ(warm.at(1).status, RunStatus::kWorkloadVerify);
}

TEST_F(GuardFsTest, UnwritableCacheDirDegradesToNoCache) {
  // A path through a regular file cannot become a directory, even for
  // root (chmod-based fixtures are a no-op under uid 0).
  std::ofstream(dir_ / "blocker") << "x";
  campaign::ResultCache cache((dir_ / "blocker" / "cache").string());
  EXPECT_FALSE(cache.enabled());

  CampaignOptions opts;
  opts.threads = 1;
  opts.cache_dir = (dir_ / "blocker" / "cache").string();
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  RunSet set = Campaign(opts).run(spec);  // must not throw
  EXPECT_TRUE(set.all_ok());
  EXPECT_EQ(set.cache_hits(), 0u);
}

// --- journal & resume -------------------------------------------------------

TEST_F(GuardFsTest, ResumeAfterTornJournalIsByteIdentical) {
  SweepSpec spec = faulty_spec();
  std::string journal = (dir_ / "sweep.jsonl").string();

  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal;
  RunSet full = Campaign(opts).run(spec);
  std::string golden = full.to_json().dump(1);

  // Emulate a SIGKILL after two cells: keep the header + two entries and
  // tear the third mid-line.
  std::ifstream in(journal);
  std::string line, kept;
  for (int i = 0; i < 3 && std::getline(in, line); ++i) kept += line + "\n";
  ASSERT_TRUE(std::getline(in, line));
  kept += line.substr(0, line.size() / 2);  // torn tail, no newline
  in.close();
  std::ofstream(journal, std::ios::trunc) << kept;

  CampaignOptions resume = opts;
  resume.resume = true;
  RunSet resumed = Campaign(resume).run(spec);
  EXPECT_EQ(resumed.resumed(), 2u);
  EXPECT_EQ(resumed.to_json().dump(1), golden);

  // The rewritten journal is whole again: resuming the finished sweep
  // replays everything and simulates nothing.
  RunSet again = Campaign(resume).run(spec);
  EXPECT_EQ(again.resumed(), 3u);
  EXPECT_EQ(again.to_json().dump(1), golden);
}

TEST_F(GuardFsTest, JournalFromADifferentSweepRefusesToResume) {
  std::string journal = (dir_ / "sweep.jsonl").string();
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal;
  SweepSpec one;
  one.add(MachineConfig::base(), "multprec", Variant::base());
  Campaign(opts).run(one);

  CampaignOptions resume = opts;
  resume.resume = true;
  EXPECT_SIM_ERROR((void)Campaign(resume).run(faulty_spec()),
                   "different sweep");
}

TEST_F(GuardFsTest, MissingJournalResumesFromNothing) {
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = (dir_ / "never-written.jsonl").string();
  opts.resume = true;
  RunSet set = Campaign(opts).run(faulty_spec());
  EXPECT_EQ(set.resumed(), 0u);
  EXPECT_EQ(set.size(), 3u);
}

TEST_F(GuardFsTest, JournalLoadRejectsGarbageHeader) {
  std::string journal = (dir_ / "garbage.jsonl").string();
  std::ofstream(journal) << "this is not json\n";
  EXPECT_SIM_ERROR((void)campaign::Journal::load(journal, 1, 1),
                   "not a vltsweep journal");
}

TEST_F(GuardFsTest, ForeignJournalDiagnosticNamesBothDigests) {
  // The message must name the journal's digest AND this sweep's, plus
  // tell the user what to do — it is the `vltsweep --resume` exit-2
  // diagnostic (docs/ERRORS.md).
  SweepSpec spec = faulty_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  std::string journal = (dir_ / "foreign.jsonl").string();
  campaign::Journal j;
  j.open(journal, digest + 1, spec.size(), {});
  try {
    (void)campaign::Journal::load(journal, digest, spec.size());
    FAIL() << "foreign journal did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfig);
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    char other[24];
    std::snprintf(other, sizeof(other), "%016llx",
                  static_cast<unsigned long long>(digest + 1));
    std::string msg = e.message();
    EXPECT_NE(msg.find(hex), std::string::npos) << msg;
    EXPECT_NE(msg.find(other), std::string::npos) << msg;
    EXPECT_NE(msg.find("delete the stale journal"), std::string::npos) << msg;
  }
}

TEST_F(GuardFsTest, JournalWriteFailureMidRunDegradesNotFails) {
  // VLT_TEST_JOURNAL_FAIL_AFTER forces the journal stream into a failed
  // state after N appends — the deterministic stand-in for a yanked
  // directory or full disk mid-run (real chmod fixtures are no-ops for
  // root). The sweep must complete; only resumability past cell N is
  // lost.
  SweepSpec spec = faulty_spec();
  std::string journal = (dir_ / "degrade.jsonl").string();
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal;
  std::string golden = Campaign(opts).run(spec).to_json().dump(1);

  ::setenv("VLT_TEST_JOURNAL_FAIL_AFTER", "1", 1);
  RunSet set = Campaign(opts).run(spec);  // must not throw
  ::unsetenv("VLT_TEST_JOURNAL_FAIL_AFTER");
  EXPECT_EQ(set.to_json().dump(1), golden);

  // The journal holds header + the one entry that made it; a resume
  // replays that entry and re-simulates the rest, byte-identically.
  std::ifstream in(journal);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);

  CampaignOptions resume = opts;
  resume.resume = true;
  RunSet resumed = Campaign(resume).run(spec);
  EXPECT_EQ(resumed.resumed(), 1u);
  EXPECT_EQ(resumed.to_json().dump(1), golden);
}

TEST_F(GuardFsTest, JournalEntryTruncatedAtNonRecordBoundaryEndsReplay) {
  // A line can be valid JSON yet not a record (torn at a field
  // boundary, so the parse succeeds but "result" is gone). Replay must
  // stop there — not crash, not invent a result.
  SweepSpec spec = faulty_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  std::string journal = (dir_ / "cut.jsonl").string();
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal;
  RunSet full = Campaign(opts).run(spec);

  {
    campaign::Journal j;
    j.open(journal, digest, spec.size(), {});
    j.append(0, spec.cells()[0].key(), full.at(0));
  }
  std::ofstream app(journal, std::ios::app);
  app << "{\"cell\":1,\"key\":\"fault.verify/base/base\"}\n";  // no result
  // A whole record AFTER the cut must be ignored too: everything past
  // the first malformed line is untrusted.
  Json entry = Json::object();
  entry.set("cell", std::uint64_t{2});
  entry.set("key", spec.cells()[2].key().to_string());
  entry.set("result", full.at(2).to_json());
  app << entry.dump() << "\n";
  app.close();

  std::map<std::size_t, RunResult> replay =
      campaign::Journal::load(journal, digest, spec.size());
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay.count(0), 1u);
}

// --- result-cache quarantine -------------------------------------------------

TEST_F(GuardFsTest, CorruptCacheEntryIsQuarantinedAndCounted) {
  campaign::ResultCache cache((dir_ / "cache").string());
  RunResult r;
  r.workload = "multprec";
  r.config = "base";
  r.variant = "base";
  r.cycles = 42;
  r.verified = true;
  cache.store(0x1234, r);
  ASSERT_TRUE(cache.lookup(0x1234).has_value());
  EXPECT_EQ(cache.quarantined(), 0u);

  // Corrupt the entry in place (the only .json file in the directory).
  fs::path entry;
  for (const auto& f : fs::directory_iterator(dir_ / "cache"))
    if (f.path().extension() == ".json") entry = f.path();
  ASSERT_FALSE(entry.empty());
  std::ofstream(entry, std::ios::trunc) << "{\"workload\": tor";

  EXPECT_FALSE(cache.lookup(0x1234).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
  // Quarantined, not deleted: the bytes stay inspectable as .corrupt.
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(entry.string() + ".corrupt"));
  // Gone from the lookup path: the next miss costs no parse and no
  // further quarantine.
  EXPECT_FALSE(cache.lookup(0x1234).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);

  // The counter feeds a registry as "cache.quarantined" (vltshard
  // --stats-out surfaces it).
  stats::Registry reg;
  reg.add_counter("cache.quarantined", cache.quarantined_counter());
  EXPECT_EQ(reg.snapshot().counter("cache.quarantined"), 1u);
}

}  // namespace
}  // namespace vlt
