// Cross-module integration tests: whole-machine runs exercising the SU,
// VCL, lanes, and memory system together, asserting the directional
// results behind every figure of the paper.
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include "machine/processor.hpp"
#include "machine/simulator.hpp"
#include "workloads/all_workloads.hpp"
#include "workloads/kernel_util.hpp"
#include "workloads/workload.hpp"

namespace vlt {
namespace {

using machine::MachineConfig;
using machine::RunResult;
using machine::Simulator;
using workloads::Variant;
using workloads::make_workload;

Cycle cycles_of(const workloads::Workload& w, const MachineConfig& cfg,
                Variant v) {
  RunResult r = Simulator(cfg).run(w, v);
  EXPECT_TRUE(r.verified) << w.name() << ": " << r.error;
  return r.cycles;
}

// --- Figure 1 directions ---------------------------------------------------

TEST(Fig1, MxmScalesWithLanes) {
  auto w = make_workload("mxm");
  Cycle one = cycles_of(*w, MachineConfig::base(1), Variant::base());
  Cycle eight = cycles_of(*w, MachineConfig::base(8), Variant::base());
  double speedup = static_cast<double>(one) / static_cast<double>(eight);
  EXPECT_GT(speedup, 5.0);  // paper: ~7x
  EXPECT_LE(speedup, 8.5);
}

TEST(Fig1, LaneScalingIsMonotoneForMxm) {
  auto w = make_workload("mxm");
  Cycle prev = kNeverReady;
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    Cycle c = cycles_of(*w, MachineConfig::base(lanes), Variant::base());
    EXPECT_LT(c, prev) << lanes << " lanes";
    prev = c;
  }
}

TEST(Fig1, ShortVectorAppsSaturateEarly) {
  auto w = make_workload("bt");
  Cycle one = cycles_of(*w, MachineConfig::base(1), Variant::base());
  Cycle eight = cycles_of(*w, MachineConfig::base(8), Variant::base());
  // bt (avg VL ~5.6) gains almost nothing from 8 lanes.
  EXPECT_LT(static_cast<double>(one) / eight, 1.5);
}

TEST(Fig1, ScalarAppsAreLaneCountInvariant) {
  workloads::OceanWorkload ocean(32, 2);
  Cycle one = cycles_of(ocean, MachineConfig::base(1), Variant::base());
  Cycle eight = cycles_of(ocean, MachineConfig::base(8), Variant::base());
  EXPECT_NEAR(static_cast<double>(one) / eight, 1.0, 0.02);
}

TEST(Fig1, EveryAppVerifiesOnEveryLaneCount) {
  for (const char* name : {"mxm", "trfd", "mpenc"}) {
    auto w = make_workload(name);
    for (unsigned lanes : {1u, 2u, 4u, 8u})
      (void)cycles_of(*w, MachineConfig::base(lanes), Variant::base());
  }
}

// --- Figure 3 directions ---------------------------------------------------

TEST(Fig3, VltSpeedsUpEveryShortVectorApp) {
  for (const std::string& name : workloads::vector_thread_apps()) {
    auto w = make_workload(name);
    Cycle base = cycles_of(*w, MachineConfig::base(), Variant::base());
    Cycle v2 = cycles_of(*w, MachineConfig::v2_cmp(),
                         Variant::vector_threads(2));
    Cycle v4 = cycles_of(*w, MachineConfig::v4_cmp(),
                         Variant::vector_threads(4));
    EXPECT_LT(v2, base) << name;
    EXPECT_LT(v4, v2) << name;  // 4 threads beat 2 on every app (paper)
    double s4 = static_cast<double>(base) / v4;
    EXPECT_GE(s4, 1.3) << name;  // paper band: 1.40 - 2.3
    EXPECT_LE(s4, 2.5) << name;
  }
}

// --- Figure 4 directions ---------------------------------------------------

TEST(Fig4, VltPreservesBusyWorkAndCutsIdle) {
  auto w = make_workload("mpenc");
  RunResult base = Simulator(MachineConfig::base()).run(*w, Variant::base());
  RunResult vlt =
      Simulator(MachineConfig::v4_cmp()).run(*w, Variant::vector_threads(4));
  ASSERT_TRUE(base.verified && vlt.verified);
  // Element work (busy lane-cycles) is invariant across configurations.
  EXPECT_EQ(base.util.busy, vlt.util.busy);
  // VLT compresses total lane-cycles (faster execution).
  EXPECT_LT(vlt.util.total(), base.util.total());
}

// --- Figure 5 directions ---------------------------------------------------

TEST(Fig5, V4SmtTrailsV4Cmt) {
  auto w = make_workload("trfd");
  Cycle smt = cycles_of(*w, MachineConfig::v4_smt(),
                        Variant::vector_threads(4));
  Cycle cmt = cycles_of(*w, MachineConfig::v4_cmt(),
                        Variant::vector_threads(4));
  EXPECT_GT(smt, cmt);  // one 4-way SU cannot feed 4 threads (paper §7.1)
}

TEST(Fig5, V4CmtComesCloseToV4Cmp) {
  auto w = make_workload("mpenc");
  Cycle cmt = cycles_of(*w, MachineConfig::v4_cmt(),
                        Variant::vector_threads(4));
  Cycle cmp = cycles_of(*w, MachineConfig::v4_cmp(),
                        Variant::vector_threads(4));
  EXPECT_LT(static_cast<double>(cmt) / cmp, 1.15);  // within ~15%
}

TEST(Fig5, HybridBeatsHeterogeneousOnTrfd) {
  // V4-CMP-h pins threads on 2-way SUs; V4-CMT lets two threads share a
  // 4-way SU flexibly (paper §7.1).
  auto w = make_workload("trfd");
  Cycle cmt = cycles_of(*w, MachineConfig::v4_cmt(),
                        Variant::vector_threads(4));
  Cycle h = cycles_of(*w, MachineConfig::v4_cmp_h(),
                      Variant::vector_threads(4));
  EXPECT_LT(cmt, h);
}

// --- Figure 6 directions ---------------------------------------------------

TEST(Fig6, RadixFavoursLaneThreads) {
  workloads::RadixWorkload radix(8192);
  Cycle lanes = cycles_of(radix, MachineConfig::v4_cmt(),
                          Variant::lane_threads(8));
  Cycle cmt = cycles_of(radix, MachineConfig::cmt(), Variant::su_threads(4));
  EXPECT_GT(static_cast<double>(cmt) / lanes, 1.5);  // paper: ~2x
}

TEST(Fig6, OceanFavoursLaneThreads) {
  workloads::OceanWorkload ocean(64, 4);
  Cycle lanes = cycles_of(ocean, MachineConfig::v4_cmt(),
                          Variant::lane_threads(8));
  Cycle cmt = cycles_of(ocean, MachineConfig::cmt(), Variant::su_threads(4));
  EXPECT_GT(static_cast<double>(cmt) / lanes, 1.1);
}

TEST(Fig6, BarnesIsRoughlyAtParity) {
  workloads::BarnesWorkload barnes(192);
  Cycle lanes = cycles_of(barnes, MachineConfig::v4_cmt(),
                          Variant::lane_threads(8));
  Cycle cmt = cycles_of(barnes, MachineConfig::cmt(), Variant::su_threads(4));
  double rel = static_cast<double>(cmt) / lanes;
  EXPECT_GT(rel, 0.7);
  EXPECT_LT(rel, 1.3);  // paper: "equal performance"
}

// --- phase machinery --------------------------------------------------------

TEST(Phases, ModeSwitchChargesOverhead) {
  // mpenc has a parallel phase followed by a serial one; the VLT run pays
  // switch overhead at both boundaries.
  auto w = make_workload("mpenc");
  RunResult r =
      Simulator(MachineConfig::v4_cmp()).run(*w, Variant::vector_threads(4));
  ASSERT_TRUE(r.verified);
  Cycle phase_sum = 0;
  for (const auto& p : r.phase_cycles) phase_sum += p.cycles;
  EXPECT_EQ(r.cycles - phase_sum,
            2 * MachineConfig::v4_cmp().phase_switch_overhead);
}

TEST(Phases, CachesStayWarmAcrossPhases) {
  // Running the same serial kernel as two phases back to back: the second
  // run must be faster thanks to warm caches.
  isa::ProgramBuilder mk1("p1"), mk2("p2");
  for (auto* b : {&mk1, &mk2}) {
    constexpr RegIdx n = 1, vl = 2, scr = 3, inP = 16, a = 48;
    b->li(a, 1);
    b->li(inP, 0x40000);
    b->li(n, 512);
    workloads::strip_mine(*b, n, vl, scr, {inP}, [&] {
      b->vload(1, inP);
      b->vadd(2, 1, a, isa::kFlagSrc2Scalar);
      b->vstore(2, inP);
    });
    b->halt();
  }
  machine::Processor proc(MachineConfig::base());
  machine::Phase ph1, ph2;
  ph1.mode = ph2.mode = machine::PhaseMode::kSerial;
  ph1.programs.push_back(mk1.build());
  ph2.programs.push_back(mk2.build());
  Cycle cold = proc.run_phase(ph1);
  Cycle warm = proc.run_phase(ph2);
  EXPECT_LT(warm, cold);
}

TEST(Phases, LaneModeAfterVectorModeWorks) {
  // A machine can run a serial vector phase, then scalar lane threads,
  // then another serial phase (mode transitions quiesce the VU).
  machine::Processor proc(MachineConfig::v4_cmt());
  auto vec_prog = [] {
    isa::ProgramBuilder b("v");
    constexpr RegIdx n = 1, vl = 2;
    b.li(n, 64);
    b.setvl(vl, n);
    b.viota(1);
    b.li(16, 0x50000);
    b.vstore(1, 16);
    b.halt();
    return b.build();
  };
  auto lane_prog = [](unsigned tid) {
    isa::ProgramBuilder b("l" + std::to_string(tid));
    b.tid(1);
    b.slli(2, 1, 3);
    b.li(3, 0x60000);
    b.add(3, 3, 2);
    b.addi(4, 1, 100);
    b.store(3, 4);
    b.barrier();
    b.halt();
    return b.build();
  };
  machine::Phase p1;
  p1.mode = machine::PhaseMode::kSerial;
  p1.programs.push_back(vec_prog());
  proc.run_phase(p1);
  machine::Phase p2;
  p2.mode = machine::PhaseMode::kLaneThreads;
  for (unsigned t = 0; t < 8; ++t) p2.programs.push_back(lane_prog(t));
  proc.run_phase(p2);
  machine::Phase p3;
  p3.mode = machine::PhaseMode::kSerial;
  p3.programs.push_back(vec_prog());
  proc.run_phase(p3);
  for (unsigned t = 0; t < 8; ++t)
    EXPECT_EQ(proc.memory().read_i64(0x60000 + 8 * t), 100 + t);
  EXPECT_EQ(proc.memory().read_i64(0x50000 + 8 * 63), 63);
}

TEST(Simulator, RunCyclesHelperChecksVerification) {
  auto w = make_workload("mxm");
  Cycle c = machine::run_cycles(MachineConfig::base(), *w, Variant::base());
  EXPECT_GT(c, 0u);
}

TEST(Simulator, UnsupportedVariantThrows) {
  auto w = make_workload("mxm");
  EXPECT_SIM_ERROR((void)Simulator(MachineConfig::v2_cmp())
                       .run(*w, Variant::vector_threads(2)),
                   "does not support");
}

}  // namespace
}  // namespace vlt
