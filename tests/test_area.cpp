// Tests of the Table 1 / Table 2 area model.
#include <gtest/gtest.h>

#include "machine/area_model.hpp"

namespace vlt::machine {
namespace {

TEST(AreaModel, BaseProcessorMatchesTable1) {
  AreaModel m;
  // Table 1: 20.9 (4-way SU) + 2.1 (VCL) + 8*6.1 (lanes) + 98.4 (L2) = 170.2
  EXPECT_NEAR(m.base_area(), 170.2, 0.05);
}

TEST(AreaModel, Table2MultiplexedConfigs) {
  AreaModel m;
  EXPECT_NEAR(m.pct_increase(MachineConfig::v2_smt()), 0.8, 0.15);
  EXPECT_NEAR(m.pct_increase(MachineConfig::v4_smt()), 1.3, 0.15);
}

TEST(AreaModel, Table2ReplicatedConfigs) {
  AreaModel m;
  EXPECT_NEAR(m.pct_increase(MachineConfig::v2_cmp()), 12.3, 0.2);
  EXPECT_NEAR(m.pct_increase(MachineConfig::v2_cmp_h()), 3.4, 0.2);
  EXPECT_NEAR(m.pct_increase(MachineConfig::v4_cmp_h()), 10.1, 0.2);
  EXPECT_NEAR(m.pct_increase(MachineConfig::v4_cmt()), 13.8, 0.2);
}

TEST(AreaModel, V4CmpMatchesTextNotTable) {
  // Paper-internal inconsistency: §4.2's text says 37%, Table 2 says 26.9%.
  // The component arithmetic (3 extra 4-way SUs = 62.7 over 170.2) gives
  // the text's value; see EXPERIMENTS.md.
  AreaModel m;
  EXPECT_NEAR(m.pct_increase(MachineConfig::v4_cmp()), 36.8, 0.3);
}

TEST(AreaModel, CmtIsSmallerThanBase) {
  AreaModel m;
  double cmt = m.config_area(MachineConfig::cmt());
  double base = m.base_area();
  double v4cmt = m.config_area(MachineConfig::v4_cmt());
  EXPECT_LT(cmt, base);
  // §5: the CMT is ~26% smaller than the VLT V4-CMT.
  EXPECT_NEAR((v4cmt - cmt) / v4cmt * 100.0, 26.3, 1.0);
}

TEST(AreaModel, SmtPenalties) {
  AreaModel m;
  EXPECT_NEAR(m.scalar_unit_area(4, 2), 20.9 * 1.06, 1e-9);
  EXPECT_NEAR(m.scalar_unit_area(4, 4), 20.9 * 1.10, 1e-9);
  EXPECT_NEAR(m.scalar_unit_area(2, 1), 5.7, 1e-9);
}

TEST(AreaModel, TablesRender) {
  AreaModel m;
  EXPECT_NE(m.table1().find("170.2"), std::string::npos);
  EXPECT_NE(m.table2().find("V4-CMT"), std::string::npos);
}

TEST(AreaModel, LaneCountScalesArea) {
  AreaModel m;
  double a4 = m.config_area(MachineConfig::base(4));
  double a8 = m.config_area(MachineConfig::base(8));
  EXPECT_NEAR(a8 - a4, 4 * 6.1, 1e-9);
}

}  // namespace
}  // namespace vlt::machine
