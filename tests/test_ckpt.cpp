// vltckpt: the deterministic checkpoint/restore seam (docs/CKPT.md).
//
// The load-bearing contract tested here: checkpoint at cycle N →
// restore → run to end must be byte-identical (RunResult::to_json())
// to the uninterrupted run, under both engines, and a snapshot of the
// same machine at the same cycle must serialize to the same bytes no
// matter which engine produced it. Plus the failure-path half: fault
// injectors round-trip through a snapshot, truncated snapshots are
// rejected by digest and fall back to a from-zero run, and foreign
// snapshots are refused by identity.
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "campaign/campaign.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "isa/isa.hpp"
#include "machine/simulator.hpp"
#include "workloads/fault_injection.hpp"
#include "workloads/workload.hpp"

namespace vlt {
namespace {

namespace fs = std::filesystem;
using machine::CheckpointOptions;
using machine::MachineConfig;
using machine::RunResult;
using machine::RunStatus;
using machine::Simulator;
using workloads::Variant;

// --- writer / reader units --------------------------------------------------

TEST(CkptWriter, SectionsAndNestedObjectsRoundTrip) {
  ckpt::Writer w;
  w.begin_section("alpha");
  w.u64("a", 42);
  w.i64("b", -7);
  w.boolean("c", true);
  w.str("d", "hello");
  w.push("inner");
  w.u64("e", 99);
  w.pop();
  w.end_section();
  w.begin_section("beta");
  std::uint64_t words[3] = {1, 0xFFFF'FFFF'FFFF'FFFFull, 0xDEAD'BEEFull};
  w.blob64("words", words, 3);
  std::uint8_t bytes[2] = {0xAB, 0x01};
  w.blob8("bytes", bytes, 2);
  w.end_section();
  Json doc = w.finish();

  ckpt::Reader r(doc);
  EXPECT_TRUE(r.has_section("alpha"));
  EXPECT_TRUE(r.has_section("beta"));
  EXPECT_FALSE(r.has_section("gamma"));
  r.enter_section("alpha");
  EXPECT_EQ(r.u64("a"), 42u);
  EXPECT_EQ(r.i64("b"), -7);
  EXPECT_TRUE(r.boolean("c"));
  EXPECT_EQ(r.str("d"), "hello");
  r.push("inner");
  EXPECT_EQ(r.u64("e"), 99u);
  r.pop();
  r.exit_section();
  r.enter_section("beta");
  std::uint64_t out[3] = {0, 0, 0};
  r.blob64("words", out, 3);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0xFFFF'FFFF'FFFF'FFFFull);
  EXPECT_EQ(out[2], 0xDEAD'BEEFull);
  std::uint8_t bout[2] = {0, 0};
  r.blob8("bytes", bout, 2);
  EXPECT_EQ(bout[0], 0xAB);
  EXPECT_EQ(bout[1], 0x01);
  r.exit_section();
}

TEST(CkptWriter, MissingFieldIsAnIoError) {
  ckpt::Writer w;
  w.begin_section("s");
  w.u64("present", 1);
  w.end_section();
  ckpt::Reader r(w.finish());
  r.enter_section("s");
  EXPECT_SIM_ERROR((void)r.u64("absent"), "absent");
}

TEST(CkptBlob, StandaloneBlobRoundTripsAndRejectsGarbage) {
  std::vector<std::uint64_t> words = {0, 1, 0x0123'4567'89AB'CDEFull};
  Json v = ckpt::blob64_json(words);
  EXPECT_EQ(ckpt::blob64_words(v, "t"), words);
  EXPECT_SIM_ERROR((void)ckpt::blob64_words(Json("abc"), "t"), "t");
  EXPECT_SIM_ERROR((void)ckpt::blob64_words(Json(std::string(16, 'z')), "t"),
                   "t");
}

TEST(CkptBlob, InstructionPackingRoundTrips) {
  isa::Instruction i;
  i.op = isa::Opcode::kAdd;
  i.rd = 3;
  i.rs1 = 17;
  i.rs2 = 31;
  i.imm = -123456;
  i.flags = 0x5;
  isa::Instruction back =
      ckpt::unpack_inst(ckpt::inst_word0(i), ckpt::inst_word1(i));
  EXPECT_EQ(back.op, i.op);
  EXPECT_EQ(back.rd, i.rd);
  EXPECT_EQ(back.rs1, i.rs1);
  EXPECT_EQ(back.rs2, i.rs2);
  EXPECT_EQ(back.imm, i.imm);
  EXPECT_EQ(back.flags, i.flags);
}

// --- temp-dir fixture --------------------------------------------------------

class CkptFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vltckpt-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(CkptFsTest, SaveLoadRoundTripsAndDetectsCorruption) {
  ckpt::Writer w;
  w.begin_section("s");
  w.u64("v", 7);
  w.end_section();
  Json doc = w.finish();
  std::string err;
  ASSERT_TRUE(ckpt::save_file(path("a.ckpt"), doc, &err)) << err;

  std::optional<Json> back = ckpt::load_file(path("a.ckpt"), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->dump(), doc.dump());

  // Truncation (a torn write that somehow bypassed the atomic rename)
  // must fail the digest, not parse into half a machine.
  std::ifstream in(path("a.ckpt"));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::ofstream(path("torn.ckpt")) << text.substr(0, text.size() / 2);
  EXPECT_FALSE(ckpt::load_file(path("torn.ckpt"), &err).has_value());

  // A flipped payload character under an intact structure must fail the
  // section digest.
  std::string flipped = text;
  std::size_t v = flipped.rfind("\"v\":7");
  ASSERT_NE(v, std::string::npos);
  flipped[v + 4] = '8';
  std::ofstream(path("flip.ckpt")) << flipped;
  EXPECT_FALSE(ckpt::load_file(path("flip.ckpt"), &err).has_value());

  EXPECT_FALSE(ckpt::load_file(path("missing.ckpt"), &err).has_value());
}

// --- the byte-identity contract ---------------------------------------------

struct ContractCase {
  const char* workload;
  Variant variant;
  isa::IsaId isa;
  bool no_skip;
};

std::string run_to_bytes(const ContractCase& c, Simulator& sim) {
  auto w = workloads::make_workload(c.workload);
  return sim.run(*w, c.variant).to_json().dump();
}

MachineConfig case_config(const ContractCase& c) {
  MachineConfig cfg = MachineConfig::v4_cmp();
  cfg.isa = c.isa;
  if (c.no_skip) cfg.event_skip = false;
  return cfg;
}

class CkptContractTest : public CkptFsTest {};

TEST_F(CkptContractTest, CheckpointRestoreIsByteIdentical) {
  const ContractCase cases[] = {
      {"mpenc", Variant::vector_threads(4), isa::IsaId::kVlt, false},
      {"mpenc", Variant::vector_threads(4), isa::IsaId::kVlt, true},
      {"trfd", Variant::vector_threads(4), isa::IsaId::kRvv, false},
      {"trfd", Variant::vector_threads(4), isa::IsaId::kRvv, true},
      {"bt", Variant::base(), isa::IsaId::kVlt, false},
  };
  for (const ContractCase& c : cases) {
    SCOPED_TRACE(std::string(c.workload) + "/" + c.variant.to_string() +
                 "/" + isa::isa_name(c.isa) + (c.no_skip ? "/no-skip" : ""));
    MachineConfig cfg = case_config(c);

    Simulator golden_sim(cfg);
    std::string golden = run_to_bytes(c, golden_sim);

    // The checkpointing run itself must not perturb the result.
    std::string snap = path("snap.ckpt");
    fs::remove(snap);
    Simulator ck_sim(cfg);
    ck_sim.set_checkpoint({kNeverReady, 1500, snap});
    EXPECT_EQ(run_to_bytes(c, ck_sim), golden);
    ASSERT_TRUE(fs::exists(snap));

    // Restore from the last periodic snapshot and run to the end.
    std::string err;
    std::optional<Json> doc = ckpt::load_file(snap, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    Simulator rs_sim(cfg);
    rs_sim.set_restore(*std::move(doc));
    EXPECT_EQ(run_to_bytes(c, rs_sim), golden);
  }
}

TEST_F(CkptContractTest, SnapshotBytesAreEngineInvariant) {
  const ContractCase c{"mpenc", Variant::vector_threads(4), isa::IsaId::kVlt,
                       false};
  for (Cycle at : {Cycle(1), Cycle(500), Cycle(3000)}) {
    SCOPED_TRACE("at=" + std::to_string(at));
    MachineConfig skip_cfg = case_config(c);
    Simulator skip_sim(skip_cfg);
    skip_sim.set_checkpoint({at, 0, path("skip.ckpt")});
    (void)run_to_bytes(c, skip_sim);

    MachineConfig oracle_cfg = case_config(c);
    oracle_cfg.event_skip = false;
    Simulator oracle_sim(oracle_cfg);
    oracle_sim.set_checkpoint({at, 0, path("oracle.ckpt")});
    (void)run_to_bytes(c, oracle_sim);

    std::ifstream a(path("skip.ckpt")), b(path("oracle.ckpt"));
    std::string sa((std::istreambuf_iterator<char>(a)),
                   std::istreambuf_iterator<char>());
    std::string sb((std::istreambuf_iterator<char>(b)),
                   std::istreambuf_iterator<char>());
    ASSERT_FALSE(sa.empty());
    // The two engines pause on the same cycle with identical machine
    // state, and event_skip is excluded from fingerprint(), so the
    // serialized snapshots match byte for byte and migrate freely
    // across engines.
    EXPECT_EQ(sa, sb);

    // And a skip-engine snapshot restores under the oracle engine.
    std::string err;
    std::optional<Json> doc = ckpt::load_file(path("skip.ckpt"), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    Simulator golden_sim(oracle_cfg);
    std::string golden = run_to_bytes(c, golden_sim);
    Simulator cross_sim(oracle_cfg);
    cross_sim.set_restore(*std::move(doc));
    EXPECT_EQ(run_to_bytes(c, cross_sim), golden);
  }
}

// --- fault injectors round-trip through a snapshot --------------------------

TEST_F(CkptFsTest, VerifyInjectorRoundTrips) {
  MachineConfig cfg = MachineConfig::base();
  auto w = workloads::make_workload("fault.verify");

  Simulator golden_sim(cfg);
  RunResult golden = golden_sim.run(*w, Variant::base());
  ASSERT_EQ(golden.status, RunStatus::kWorkloadVerify);

  std::string snap = path("verify.ckpt");
  Simulator ck_sim(cfg);
  ck_sim.set_checkpoint({kNeverReady, 2, snap});
  RunResult with_ckpt = ck_sim.run(*w, Variant::base());
  EXPECT_EQ(with_ckpt.to_json().dump(), golden.to_json().dump());
  ASSERT_TRUE(fs::exists(snap));

  std::string err;
  std::optional<Json> doc = ckpt::load_file(snap, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  Simulator rs_sim(cfg);
  rs_sim.set_restore(*std::move(doc));
  RunResult restored = rs_sim.run(*w, Variant::base());
  EXPECT_EQ(restored.to_json().dump(), golden.to_json().dump());
}

TEST_F(CkptFsTest, InvariantInjectorFailsIdenticallyUnderCheckpointing) {
  // fault.invariant trips a processor self-check at phase setup, before
  // any pause point: arming checkpoints must not change the diagnostic,
  // and no snapshot is ever written.
  MachineConfig cfg = MachineConfig::base();
  auto w = workloads::make_workload("fault.invariant");
  std::string plain;
  try {
    (void)Simulator(cfg).run(*w, Variant::base());
    FAIL() << "fault.invariant did not throw";
  } catch (const SimError& e) {
    plain = e.what();
  }
  std::string snap = path("inv.ckpt");
  Simulator ck_sim(cfg);
  ck_sim.set_checkpoint({kNeverReady, 10, snap});
  try {
    (void)ck_sim.run(*w, Variant::base());
    FAIL() << "fault.invariant did not throw under checkpointing";
  } catch (const SimError& e) {
    EXPECT_EQ(std::string(e.what()), plain);
  }
  EXPECT_FALSE(fs::exists(snap));
}

TEST_F(CkptFsTest, BarrierInjectorTimesOutIdenticallyAfterRestore) {
  MachineConfig cfg = MachineConfig::v4_cmt();
  cfg.cycle_limit = 20'000;
  auto w = workloads::make_workload("fault.barrier");

  std::string plain;
  try {
    (void)Simulator(cfg).run(*w, Variant::lane_threads(4));
    FAIL() << "stuck barrier did not time out";
  } catch (const SimError& e) {
    plain = e.what();
  }

  // Periodic snapshots up to the timeout; the budget check fires before
  // the pause check, so the last snapshot lands strictly inside the
  // budget and the restored run must walk into the same wall.
  std::string snap = path("barrier.ckpt");
  Simulator ck_sim(cfg);
  ck_sim.set_checkpoint({kNeverReady, 6'000, snap});
  try {
    (void)ck_sim.run(*w, Variant::lane_threads(4));
    FAIL() << "stuck barrier did not time out under checkpointing";
  } catch (const SimError& e) {
    EXPECT_EQ(std::string(e.what()), plain);
  }
  ASSERT_TRUE(fs::exists(snap));

  std::string err;
  std::optional<Json> doc = ckpt::load_file(snap, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  Simulator rs_sim(cfg);
  rs_sim.set_restore(*std::move(doc));
  try {
    (void)rs_sim.run(*w, Variant::lane_threads(4));
    FAIL() << "restored stuck barrier did not time out";
  } catch (const SimError& e) {
    EXPECT_EQ(std::string(e.what()), plain);
  }
}

// --- identity and mode guards ----------------------------------------------

TEST_F(CkptFsTest, ForeignSnapshotIsRefusedByIdentity) {
  MachineConfig cfg = MachineConfig::v4_cmp();
  auto mpenc = workloads::make_workload("mpenc");
  std::string snap = path("mpenc.ckpt");
  Simulator ck_sim(cfg);
  ck_sim.set_checkpoint({2'000, 0, snap});
  (void)ck_sim.run(*mpenc, Variant::vector_threads(4));

  std::string err;
  std::optional<Json> doc = ckpt::load_file(snap, &err);
  ASSERT_TRUE(doc.has_value()) << err;

  // checkpoint_matches names the first mismatch...
  std::string why;
  EXPECT_TRUE(machine::checkpoint_matches(*doc, "mpenc", "vlt-4vt", cfg,
                                          &why));
  EXPECT_FALSE(machine::checkpoint_matches(*doc, "trfd", "vlt-4vt", cfg,
                                           &why));
  EXPECT_NE(why.find("workload"), std::string::npos) << why;
  MachineConfig other = MachineConfig::base();
  EXPECT_FALSE(machine::checkpoint_matches(*doc, "mpenc", "vlt-4vt", other,
                                           &why));

  // ...and a Simulator fed the wrong snapshot refuses outright.
  auto trfd = workloads::make_workload("trfd");
  Simulator rs_sim(cfg);
  rs_sim.set_restore(*doc);
  EXPECT_SIM_ERROR((void)rs_sim.run(*trfd, Variant::vector_threads(4)),
                   "checkpoint workload");
}

TEST_F(CkptFsTest, AuditModeIsIncompatibleWithCheckpointing) {
  MachineConfig cfg = MachineConfig::base();
  cfg.audit = audit::AuditConfig::full();
  auto w = workloads::make_workload("mpenc");
  Simulator sim(cfg);
  sim.set_checkpoint({100, 0, path("x.ckpt")});
  EXPECT_SIM_ERROR((void)sim.run(*w, Variant::base()), "audit");
}

// --- campaign fallback on a bad snapshot ------------------------------------

TEST_F(CkptFsTest, ExecuteCellFallsBackToZeroOnTruncatedSnapshot) {
  campaign::Cell cell;
  cell.config = MachineConfig::v4_cmp();
  cell.workload = "mpenc";
  cell.variant = Variant::vector_threads(4);
  campaign::CampaignOptions opts;

  machine::RunResult golden = campaign::execute_cell(cell, opts);
  ASSERT_TRUE(golden.ok());

  // Plant a truncated snapshot where the cell's checkpoint would live —
  // the SIGKILL-mid-write scenario. The digest rejects it; the cell
  // runs from zero, byte-identically, and clears the snapshot away.
  std::string snap = path("cell.ckpt");
  {
    Simulator ck_sim(cell.config);
    ck_sim.set_checkpoint({2'000, 0, snap});
    auto w = workloads::make_workload("mpenc");
    (void)ck_sim.run(*w, cell.variant);
    std::ifstream in(snap);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream(snap, std::ios::trunc) << text.substr(0, text.size() / 3);
  }
  campaign::CellCheckpoint ckpt{5'000, snap};
  machine::RunResult r = campaign::execute_cell(cell, opts, nullptr, nullptr,
                                                &ckpt);
  EXPECT_EQ(r.to_json().dump(), golden.to_json().dump());
  EXPECT_FALSE(fs::exists(snap));
}

TEST_F(CkptFsTest, ExecuteCellResumesFromAValidSnapshot) {
  campaign::Cell cell;
  cell.config = MachineConfig::v4_cmp();
  cell.workload = "mpenc";
  cell.variant = Variant::vector_threads(4);
  campaign::CampaignOptions opts;

  machine::RunResult golden = campaign::execute_cell(cell, opts);
  ASSERT_TRUE(golden.ok());

  std::string snap = path("cell.ckpt");
  {
    Simulator ck_sim(cell.config);
    ck_sim.set_checkpoint({2'000, 0, snap});
    auto w = workloads::make_workload("mpenc");
    (void)ck_sim.run(*w, cell.variant);
  }
  ASSERT_TRUE(fs::exists(snap));
  campaign::CellCheckpoint ckpt{5'000, snap};
  machine::RunResult r = campaign::execute_cell(cell, opts, nullptr, nullptr,
                                                &ckpt);
  EXPECT_EQ(r.to_json().dump(), golden.to_json().dump());
  EXPECT_FALSE(fs::exists(snap));  // completed cells clean up
}

}  // namespace
}  // namespace vlt
