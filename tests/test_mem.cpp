// Unit tests for the memory-system timing models.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"

namespace vlt::mem {
namespace {

TEST(Cache, MissThenHit) {
  Cache c(1024, 2);
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x13F, false).hit);  // same 64-byte line
  EXPECT_FALSE(c.access(0x140, false).hit);
}

TEST(Cache, LruEviction) {
  // 2 ways, 8 sets of 64B lines in 1 KB; lines mapping to set 0 are
  // addresses 0, 512, 1024, ...
  Cache c(1024, 2);
  c.access(0, false);
  c.access(512, false);
  c.access(0, false);     // 0 is now MRU
  c.access(1024, false);  // evicts 512
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(512));
  EXPECT_TRUE(c.probe(1024));
}

TEST(Cache, DirtyWritebackReported) {
  Cache c(128, 1);  // 2 sets, direct mapped
  c.access(0, true);
  Cache::Result r = c.access(128, false);  // same set, evicts dirty line 0
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_addr, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache c(128, 1);
  c.access(0, false);
  EXPECT_FALSE(c.access(128, false).writeback);
}

TEST(Cache, Invalidate) {
  Cache c(1024, 2);
  c.access(0x200, false);
  c.invalidate(0x200);
  EXPECT_FALSE(c.probe(0x200));
}

TEST(MainMemory, LatencyAndBandwidth) {
  MainMemory m(MainMemoryParams{90, 4});
  EXPECT_EQ(m.request_line(0), 90u);
  // Second request in the same cycle waits for the bus.
  EXPECT_EQ(m.request_line(0), 94u);
  EXPECT_EQ(m.request_line(100), 190u);
}

class L2Test : public ::testing::Test {
 protected:
  L2Test() : memory_(MainMemoryParams{90, 4}), l2_(params(), memory_) {}
  static L2Params params() {
    L2Params p;  // defaults: 4MB, 4-way, 16 banks, 10/100
    return p;
  }
  MainMemory memory_;
  L2Cache l2_;
};

TEST_F(L2Test, HitAndMissLatencies) {
  // Cold miss: completes at start + 100 (Table 3 miss penalty).
  EXPECT_EQ(l2_.access(0x1000, false, 0), 100u);
  // Hit afterwards: start + 10.
  EXPECT_EQ(l2_.access(0x1000, false, 200), 210u);
}

TEST_F(L2Test, PendingMissIsMerged) {
  Cycle first = l2_.access(0x2000, false, 0);
  Cycle second = l2_.access(0x2000, false, 1);
  EXPECT_EQ(second, first);  // MSHR merge, no second memory trip
  EXPECT_EQ(memory_.requests(), 1u);
}

TEST_F(L2Test, BankConflictsSerialize) {
  // Warm three lines: 0 and 16 share bank 0 (16 banks); line 1 is bank 1.
  l2_.access(0, false, 0);
  l2_.access(16 * kLineBytes, false, 0);
  l2_.access(1 * kLineBytes, false, 0);
  Cycle base = 1000;
  l2_.access(0, false, base);
  // Same bank in the same cycle: delayed by the bank occupancy.
  Cycle t1 = l2_.access(16 * kLineBytes, false, base);
  // Different bank in the same cycle: unaffected.
  Cycle t2 = l2_.access(1 * kLineBytes, false, base);
  EXPECT_EQ(t2, base + 10);
  EXPECT_GT(t1, t2);
}

TEST_F(L2Test, StridedAccessesSpreadAcrossBanks) {
  // Unit-stride lines touch all 16 banks before reusing one.
  Cycle base = 1000;
  // Warm the lines first.
  for (unsigned i = 0; i < 16; ++i)
    l2_.access(i * kLineBytes, false, 0);
  Cycle max_t = 0;
  for (unsigned i = 0; i < 16; ++i)
    max_t = std::max(max_t, l2_.access(i * kLineBytes, false, base));
  EXPECT_EQ(max_t, base + 10);  // all hits, no conflicts
}

TEST_F(L2Test, RandomStreamInvariant_CompletionNeverBeforeHitLatency) {
  Xorshift64 rng(123);
  for (int i = 0; i < 2000; ++i) {
    Cycle now = static_cast<Cycle>(i);
    Addr a = (rng.next_below(1 << 20)) * 8;
    Cycle done = l2_.access(a, rng.next_below(2) == 0, now);
    EXPECT_GE(done, now + 10);
  }
}

}  // namespace
}  // namespace vlt::mem
