// Equivalence suite for the event-driven skip-ahead engine (docs/PERF.md):
// the default engine and the --no-skip cycle-by-cycle oracle must produce
// byte-identical RunResult::to_json for every workload, variant, and lane
// count — cycles, phase_cycles, utilization split, and histograms may not
// move by a single unit. Fault paths are covered too: injected failures
// must classify identically and timeout diagnostics must report the same
// phase and barrier state under skip-ahead.
#include <gtest/gtest.h>

#include <string>

#include "machine/machine_config.hpp"
#include "machine/phase.hpp"
#include "machine/processor.hpp"
#include "machine/simulator.hpp"
#include "workloads/workload.hpp"

#include "expect_sim_error.hpp"

namespace vlt {
namespace {

using machine::MachineConfig;
using machine::RunResult;
using machine::RunStatus;
using machine::Simulator;
using workloads::Variant;

/// Runs `workload` under both engines and returns {skip, no-skip} JSON.
std::pair<std::string, std::string> run_both(MachineConfig cfg,
                                             const std::string& workload,
                                             Variant variant) {
  workloads::WorkloadPtr w = workloads::make_workload(workload);
  cfg.event_skip = true;
  std::string with_skip =
      Simulator(cfg).run(*w, variant).to_json().dump(1);
  cfg.event_skip = false;
  std::string without =
      Simulator(cfg).run(*w, variant).to_json().dump(1);
  return {with_skip, without};
}

void expect_equivalent(MachineConfig cfg, const std::string& workload,
                       Variant variant) {
  auto [with_skip, without] = run_both(cfg, workload, variant);
  EXPECT_EQ(with_skip, without)
      << workload << " on " << cfg.name << " / " << variant.to_string()
      << " diverges between skip-ahead and --no-skip";
}

// --- every workload, base machine, lane counts 1 / 4 / 8 -------------------

class LaneCountEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(LaneCountEquivalence, AllWorkloadsByteIdentical) {
  const unsigned lanes = GetParam();
  for (const std::string& name : workloads::workload_names())
    expect_equivalent(MachineConfig::base(lanes), name, Variant::base());
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneCountEquivalence,
                         ::testing::Values(1u, 4u, 8u));

// --- VLT vector-thread variants on the golden sweep configs ----------------

TEST(SkipEquivalence, VectorThreadVariants) {
  for (const std::string& name : workloads::workload_names()) {
    workloads::WorkloadPtr w = workloads::make_workload(name);
    if (!w->supports(Variant::Kind::kVectorThreads)) continue;
    expect_equivalent(MachineConfig::v2_cmp(), name,
                      Variant::vector_threads(2));
    expect_equivalent(MachineConfig::v4_cmp(), name,
                      Variant::vector_threads(4));
  }
}

// --- RVV frontend cells: the second ISA must skip identically too ----------

TEST(SkipEquivalence, RvvFrontendCells) {
  for (const char* name : {"mxm", "radix", "trfd"}) {
    MachineConfig cfg = MachineConfig::base();
    cfg.isa = IsaId::kRvv;
    expect_equivalent(cfg, name, Variant::base());
  }
  MachineConfig cfg = MachineConfig::v4_cmp();
  cfg.isa = IsaId::kRvv;
  expect_equivalent(cfg, "trfd", Variant::vector_threads(4));
}

// --- lane-threading (CMT) variants: the in-order lane-core engine ----------

TEST(SkipEquivalence, LaneThreadVariants) {
  for (const std::string& name : workloads::workload_names()) {
    workloads::WorkloadPtr w = workloads::make_workload(name);
    if (!w->supports(Variant::Kind::kLaneThreads)) continue;
    expect_equivalent(MachineConfig::v4_cmt(), name,
                      Variant::lane_threads(4));
  }
}

// --- the idle-heavy stress row (workloads/stallmark.hpp) -------------------
//
// Long L2-bound stall streaks plus tid-skewed barrier imbalance: the
// cells where the engine skips the most, so the cells where a skip bug
// would move the most numbers.

TEST(SkipEquivalence, StallmarkIdleHeavyCells) {
  expect_equivalent(MachineConfig::base(), "stallmark", Variant::base());
  expect_equivalent(MachineConfig::v2_cmp(), "stallmark",
                    Variant::vector_threads(2));
  expect_equivalent(MachineConfig::v4_cmp(), "stallmark",
                    Variant::vector_threads(4));
}

// --- partition-parallel ticking (MachineConfig::host_threads) --------------
//
// host_threads is timing-neutral by contract: the skip engine ticking
// independent CMP partitions on several host threads must serialize every
// shared-structure touch back into tick order, so its RunResult bytes
// must match the serial --no-skip oracle exactly.

void expect_parallel_equivalent(MachineConfig cfg,
                                const std::string& workload,
                                Variant variant, unsigned host_threads) {
  workloads::WorkloadPtr w = workloads::make_workload(workload);
  cfg.event_skip = true;
  cfg.host_threads = host_threads;
  std::string parallel = Simulator(cfg).run(*w, variant).to_json().dump(1);
  cfg.event_skip = false;
  cfg.host_threads = 1;
  std::string oracle = Simulator(cfg).run(*w, variant).to_json().dump(1);
  EXPECT_EQ(parallel, oracle)
      << workload << " on " << cfg.name << " / " << variant.to_string()
      << " diverges under host_threads=" << host_threads;
}

TEST(SkipEquivalence, HostThreadsByteIdentical) {
  for (const std::string& name : workloads::vector_thread_apps()) {
    expect_parallel_equivalent(MachineConfig::v2_cmp(), name,
                               Variant::vector_threads(2), 2);
    expect_parallel_equivalent(MachineConfig::v4_cmp(), name,
                               Variant::vector_threads(4), 2);
  }
  expect_parallel_equivalent(MachineConfig::v2_cmp(), "stallmark",
                             Variant::vector_threads(2), 2);
  expect_parallel_equivalent(MachineConfig::v4_cmp(), "stallmark",
                             Variant::vector_threads(4), 4);
}

// --- fault injectors: failures must classify identically -------------------

TEST(SkipEquivalence, VerifyFaultProducesIdenticalResult) {
  auto [with_skip, without] =
      run_both(MachineConfig::base(), "fault.verify", Variant::base());
  EXPECT_EQ(with_skip, without);
  // And both really are the injected verification failure.
  EXPECT_NE(with_skip.find("workload-verify"), std::string::npos);
}

TEST(SkipEquivalence, InvariantFaultTripsBothEngines) {
  auto w = workloads::make_workload("fault.invariant");
  for (bool skip : {true, false}) {
    MachineConfig cfg = MachineConfig::base();
    cfg.event_skip = skip;
    EXPECT_SIM_ERROR((void)Simulator(cfg).run(*w, Variant::base()),
                     "serial phase");
  }
}

TEST(SkipEquivalence, BarrierTimeoutDiagnosticIdentical) {
  auto w = workloads::make_workload("fault.barrier");
  std::string messages[2];
  for (bool skip : {true, false}) {
    MachineConfig cfg = MachineConfig::v4_cmt();
    cfg.cycle_limit = 20'000;
    cfg.event_skip = skip;
    try {
      (void)Simulator(cfg).run(*w, Variant::lane_threads(4));
      FAIL() << "stuck barrier did not time out (event_skip=" << skip << ")";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTimeout);
      messages[skip ? 0 : 1] = e.message();
    }
  }
  // Same phase label, same barrier arrival state, same per-context dump —
  // the whole diagnostic must match, not just the cycle count.
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_NE(messages[0].find("stuck-barrier"), std::string::npos);
  EXPECT_NE(messages[0].find("1/4 arrivals"), std::string::npos);
}

// --- the engine must actually skip ----------------------------------------

TEST(SkipEquivalence, SkipExecutesFewerTicksForSameCycles) {
  workloads::WorkloadPtr w = workloads::make_workload("mpenc");
  machine::ParallelProgram prog = w->build(Variant::base());

  Cycle cycles[2];
  std::uint64_t ticks[2];
  for (bool skip : {true, false}) {
    MachineConfig cfg = MachineConfig::base();
    cfg.event_skip = skip;
    machine::Processor proc(cfg, nullptr);
    w->init_memory(proc.memory());
    for (const machine::Phase& phase : prog.phases) proc.run_phase(phase);
    cycles[skip ? 0 : 1] = proc.now();
    ticks[skip ? 0 : 1] = proc.ticks_executed();
  }
  EXPECT_EQ(cycles[0], cycles[1]) << "skip-ahead changed reported cycles";
  EXPECT_EQ(ticks[1], cycles[1]) << "the oracle must tick every cycle";
  EXPECT_LT(ticks[0], ticks[1])
      << "skip-ahead executed as many ticks as the oracle — no cycle was "
         "ever skipped";
}

}  // namespace
}  // namespace vlt
