// vltsim_run — command-line driver: run any workload on any machine
// configuration and variant, print cycle counts, per-phase timing,
// Table 4-style characteristics, and cache/predictor statistics.
//
//   vltsim_run <workload> [--config NAME] [--variant V] [--isa NAME]
//              [--lanes N] [--cycle-limit N] [--no-skip] [--json]
//              [--host-threads N] [--checkpoint-at N]
//              [--checkpoint-out FILE] [--restore FILE]
//              [--audit] [--trace FILE] [--list]
//
// Exit codes: 0 ok, 1 run failed (verification/timeout/...), 2 usage,
// 3 internal simulator error (see docs/ERRORS.md).
//
// Examples:
//   vltsim_run mpenc --config V4-CMP --variant vlt4
//   vltsim_run radix --config CMT --variant su4
//   vltsim_run mxm --lanes 2
//   vltsim_run trfd --isa rvv --config V4-CMP --variant vlt4
//   vltsim_run bt --json           # RunResult JSON on stdout
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/checks.hpp"
#include "campaign/campaign.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/cli.hpp"
#include "isa/isa.hpp"
#include "machine/area_model.hpp"
#include "machine/simulator.hpp"
#include "workloads/workload.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

void usage() {
  std::string configs;
  for (const std::string& n : machine::MachineConfig::preset_names())
    configs += " " + n;
  std::string isas;
  for (const std::string& n : isa::isa_names()) {
    if (!isas.empty()) isas += " ";
    isas += n;
  }
  std::fprintf(
      stderr,
      "usage: vltsim_run <workload> [--config NAME] [--variant V] "
      "[--isa NAME] [--lanes N] [--cycle-limit N] [--no-skip] [--json] "
      "[--host-threads N] [--checkpoint-at N] [--checkpoint-out FILE] "
      "[--restore FILE] [--audit] [--lint] [--trace FILE] [--list]\n"
      "  workloads: mxm sage mpenc trfd multprec bt radix ocean barnes\n"
      "  configs:  %s\n"
      "  variants: %s\n"
      "  --isa NAME: ISA frontend to build the workload for (%s;\n"
      "             default vlt). Workloads without a port to the\n"
      "             requested frontend fail the run (docs/ISA.md)\n"
      "  --lanes N: base machine with N lanes (1-%u, dividing %u)\n"
      "  --cycle-limit N: cycle budget; exceeding it fails the run with\n"
      "             status \"timeout\" and a per-context diagnostic\n"
      "  --no-skip: tick every cycle instead of event-driven skip-ahead\n"
      "             (timing-neutral oracle, docs/PERF.md)\n"
      "  --host-threads N: partition-parallel scalar-unit ticking on N\n"
      "             host threads (skip engine only; timing-neutral)\n"
      "  --checkpoint-at N: write an architectural snapshot at the first\n"
      "             simulated cycle >= N (requires --checkpoint-out)\n"
      "  --checkpoint-out FILE: snapshot destination (docs/CKPT.md);\n"
      "             written atomically, digest-protected\n"
      "  --restore FILE: resume from a snapshot instead of cycle zero;\n"
      "             the finished run is byte-identical to an\n"
      "             uninterrupted one (docs/CKPT.md)\n"
      "  --json:    print the run result as JSON (schema: RunResult)\n"
      "  --audit:   per-cycle invariant checks + lockstep co-simulation\n"
      "             (fails with a diagnostic on the first violation)\n"
      "  --lint:    run the vltlint static checks over the built program\n"
      "             before simulating; findings fail the run (docs/LINT.md)\n"
      "  --trace FILE: write structured events (vector dispatch, VIQ\n"
      "             handoff, barrier arrive/release, L2 misses) as Chrome\n"
      "             trace_event JSON (chrome://tracing, docs/METRICS.md)\n",
      configs.c_str(), Variant::spec_help().c_str(), isas.c_str(),
      kMaxVectorLength, kMaxVectorLength);
}

int run_main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string workload_name;
  std::string config_name = "base";
  Variant variant = Variant::base();
  isa::IsaId isa_id = isa::IsaId::kVlt;
  unsigned lanes = 0;
  Cycle cycle_limit = 0;
  bool audit = false;
  bool json = false;
  bool no_skip = false;
  bool lint = false;
  unsigned host_threads = 0;
  Cycle checkpoint_at = kNeverReady;
  std::string checkpoint_out;
  std::string restore_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      for (const std::string& n : workloads::workload_names())
        std::printf("%s\n", n.c_str());
      return 0;
    }
    if (arg == "--config" && i + 1 < argc) {
      config_name = argv[++i];
    } else if (arg == "--variant" && i + 1 < argc) {
      std::string err;
      std::optional<Variant> parsed = Variant::parse(argv[++i], &err);
      if (!parsed) {
        std::fprintf(stderr, "vltsim_run: %s\n", err.c_str());
        return 2;
      }
      variant = *parsed;
    } else if (arg == "--isa" && i + 1 < argc) {
      const char* v = argv[++i];
      std::optional<isa::IsaId> parsed = isa::isa_from_name(v);
      if (!parsed) {
        std::string valid;
        for (const std::string& n : isa::isa_names()) valid += " " + n;
        std::fprintf(stderr, "vltsim_run: unknown isa '%s' (valid:%s)\n", v,
                     valid.c_str());
        return 2;
      }
      isa_id = *parsed;
    } else if (arg == "--lanes" && i + 1 < argc) {
      const char* v = argv[++i];
      char* end = nullptr;
      long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1 ||
          n > static_cast<long>(kMaxVectorLength) ||
          kMaxVectorLength % static_cast<unsigned>(n) != 0) {
        std::fprintf(stderr,
                     "vltsim_run: --lanes expects an integer in [1,%u] "
                     "dividing %u, got '%s'\n",
                     kMaxVectorLength, kMaxVectorLength, v);
        return 2;
      }
      lanes = static_cast<unsigned>(n);
    } else if (arg == "--cycle-limit" && i + 1 < argc) {
      const char* v = argv[++i];
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltsim_run: --cycle-limit expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      cycle_limit = static_cast<Cycle>(n);
    } else if (arg == "--no-skip") {
      no_skip = true;
    } else if (arg == "--host-threads" && i + 1 < argc) {
      std::optional<unsigned> n =
          cli::parse_thread_count("vltsim_run", arg, argv[++i]);
      if (!n) return 2;
      host_threads = *n;
    } else if (arg == "--checkpoint-at" && i + 1 < argc) {
      const char* v = argv[++i];
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltsim_run: --checkpoint-at expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      checkpoint_at = static_cast<Cycle>(n);
    } else if (arg == "--checkpoint-out" && i + 1 < argc) {
      checkpoint_out = argv[++i];
    } else if (arg == "--restore" && i + 1 < argc) {
      restore_path = argv[++i];
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg[0] != '-' && workload_name.empty()) {
      workload_name = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (workload_name.empty()) {
    usage();
    return 2;
  }

  machine::MachineConfig cfg;
  if (lanes != 0) {
    cfg = machine::MachineConfig::base(lanes);
  } else {
    std::optional<machine::MachineConfig> found =
        machine::MachineConfig::find(config_name);
    if (!found) {
      std::string valid;
      for (const std::string& n : machine::MachineConfig::preset_names())
        valid += " " + n;
      std::fprintf(stderr,
                   "vltsim_run: unknown config '%s' (valid:%s)\n",
                   config_name.c_str(), valid.c_str());
      return 2;
    }
    cfg = std::move(*found);
  }
  if (audit) cfg.audit = audit::AuditConfig::full();
  if (cycle_limit != 0) cfg.cycle_limit = cycle_limit;
  if (no_skip) cfg.event_skip = false;
  if (host_threads != 0) cfg.host_threads = host_threads;
  cfg.isa = isa_id;
  if ((checkpoint_at != kNeverReady) != !checkpoint_out.empty()) {
    std::fprintf(stderr,
                 "vltsim_run: --checkpoint-at and --checkpoint-out must be "
                 "given together\n");
    return 2;
  }
  if (audit && (!checkpoint_out.empty() || !restore_path.empty())) {
    std::fprintf(stderr,
                 "vltsim_run: --audit is incompatible with checkpoint/"
                 "restore (auditor state is not serialized, docs/CKPT.md)\n");
    return 2;
  }
  auto workload = workloads::find_workload(workload_name);
  if (workload == nullptr) {
    std::fprintf(stderr, "vltsim_run: unknown workload '%s'\n",
                 workload_name.c_str());
    usage();
    return 2;
  }
  if (!workload->supports_isa(isa_id)) {
    std::fprintf(stderr, "%s has no port to the %s ISA frontend\n",
                 workload_name.c_str(), isa::isa_name(isa_id));
    return 1;
  }
  if (!workload->supports(variant.kind)) {
    std::fprintf(stderr, "%s does not support variant %s\n",
                 workload_name.c_str(), variant.to_string().c_str());
    return 1;
  }
  if (!campaign::config_supports(cfg, variant)) {
    std::fprintf(stderr,
                 "config %s cannot run variant %s (not enough hardware "
                 "contexts/lanes)\n",
                 cfg.name.c_str(), variant.to_string().c_str());
    return 1;
  }

  if (lint) {
    machine::ParallelProgram built = workload->build(variant, isa_id);
    std::vector<analysis::Finding> findings = analysis::analyze(built);
    if (!findings.empty()) {
      for (const analysis::Finding& f : findings)
        std::fprintf(stderr, "vltsim_run: lint: %s\n", f.to_string().c_str());
      std::fprintf(stderr,
                   "vltsim_run: %zu lint finding(s); refusing to simulate "
                   "a malformed program\n", findings.size());
      return 1;
    }
  }

  std::optional<Json> restore_doc;
  if (!restore_path.empty()) {
    std::string err;
    restore_doc = ckpt::load_file(restore_path, &err);
    if (!restore_doc) {
      std::fprintf(stderr, "vltsim_run: cannot restore from '%s': %s\n",
                   restore_path.c_str(), err.c_str());
      return 1;
    }
  }

  machine::RunResult r;
  stats::TraceBuffer trace;
  try {
    machine::Simulator sim(cfg);
    if (!trace_path.empty()) sim.set_trace(&trace);
    if (!checkpoint_out.empty())
      sim.set_checkpoint({checkpoint_at, 0, checkpoint_out});
    if (restore_doc) sim.set_restore(std::move(*restore_doc));
    r = sim.run(*workload, variant);
  } catch (const vlt::SimError& e) {
    // Simulation-level failures (timeout, tripped invariant) are a
    // failed run (exit 1), not a tool crash: report them as a result.
    r.status = machine::run_status_from_error(e.kind());
    r.error = e.what();
  }
  r.workload = workload_name;
  r.config = cfg.name;
  r.variant = variant.to_string();
  r.isa = isa::isa_name(isa_id);

  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "vltsim_run: cannot open trace file '%s'\n",
                   trace_path.c_str());
      return 1;
    }
    std::string out = trace.to_chrome_json().dump(1);
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (!json)
      std::fprintf(stderr, "vltsim_run: wrote %zu trace events to %s%s\n",
                   trace.size(), trace_path.c_str(),
                   trace.dropped() > 0 ? " (ring overflowed; oldest dropped)"
                                       : "");
  }

  if (json) {
    std::printf("%s\n", r.to_json().dump(1).c_str());
    return r.ok() ? 0 : 1;
  }

  std::printf("workload : %s\nconfig   : %s\nvariant  : %s\nisa      : %s\n",
              r.workload.c_str(), r.config.c_str(), r.variant.c_str(),
              r.isa.c_str());
  std::printf("status   : %s%s%s\n", machine::run_status_name(r.status),
              r.ok() ? "" : " — ", r.ok() ? "" : r.error.c_str());
  std::printf("verified : %s\n", r.verified ? "yes" : "NO");
  if (audit)
    std::printf("audit    : clean (invariants + lockstep co-simulation)\n");
  std::printf("cycles   : %llu\n",
              static_cast<unsigned long long>(r.cycles));
  for (const auto& p : r.phase_cycles)
    std::printf("  phase %-24s %10llu cycles\n", p.label.c_str(),
                static_cast<unsigned long long>(p.cycles));
  std::printf("scalar instructions : %llu\n",
              static_cast<unsigned long long>(r.scalar_insts));
  std::printf("vector instructions : %llu\n",
              static_cast<unsigned long long>(r.vector_insts));
  std::printf("vector element ops  : %llu\n",
              static_cast<unsigned long long>(r.element_ops));
  std::printf("%% vectorization     : %.1f\n", r.pct_vectorization());
  if (r.element_ops > 0) {
    std::printf("average VL          : %.1f\n", r.avg_vl());
    std::string common;
    for (std::uint64_t vl : r.vl_hist.top_keys(3)) {
      if (!common.empty()) common += ", ";
      common += std::to_string(vl);
    }
    std::printf("common VLs          : %s\n", common.c_str());
  }
  std::printf("%% VLT opportunity   : %.1f\n", r.pct_opportunity());
  if (cfg.has_vector_unit) {
    const auto& u = r.util;
    double total = static_cast<double>(u.total());
    if (total > 0)
      std::printf(
          "datapath utilization: busy %.1f%%  partly-idle %.1f%%  "
          "stalled %.1f%%  all-idle %.1f%%\n",
          100.0 * u.busy / total, 100.0 * u.partly_idle / total,
          100.0 * u.stalled / total, 100.0 * u.all_idle / total);
  }
  std::printf("die area            : %.1f mm^2 (%+.1f%% vs base)\n",
              machine::AreaModel().config_area(cfg),
              machine::AreaModel().pct_increase(cfg));
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const vlt::SimError& e) {
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
