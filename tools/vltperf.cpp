// vltperf — host-throughput benchmark harness for the event-driven
// skip-ahead core loop (docs/PERF.md).
//
//   vltperf [--quick] [--isa NAME] [--budget-ms N] [--min-speedup X]
//           [--host-threads N] [--out FILE]
//
// Runs a workload × config × variant grid twice per cell — once with
// event-driven skip-ahead (the default core loop) and once with
// --no-skip cycle-by-cycle ticking — taking the best host time over
// repeated passes within a per-cell wall budget. Every pass doubles as
// a correctness oracle: the two modes' RunResult::to_json() bytes must
// be identical, or the tool fails (exit 1) before reporting any number.
// --host-threads N sets MachineConfig::host_threads on both modes (only
// the skip engine uses it), so the byte-compare also covers
// partition-parallel ticking.
//
// The report (default BENCH_vltperf.json, schema "vltperf-v2", a pure
// superset of v1) carries per-cell simulated cycles, host ms per mode,
// skip/no-skip speedup, simulated Mcycles per host second, and the
// engine's own cost split — ticks_skip/ticks_noskip (loop iterations
// actually executed per mode) and scans (next_event scans the skip
// engine paid) — plus grid totals (including instructions per host
// second). --min-speedup X turns the total speedup into a gate: exit 1
// (naming the worst cell) when skip-ahead is not at least X times
// faster; CI gates on both the serial and --host-threads 2 totals.
//
// Grids:
//   default   all registered workloads × {base, V2-CMP, V4-CMP}
//             × {base, vlt2, vlt4}, pruned to runnable cells
//   --quick   mpenc,trfd,multprec,bt,stallmark over the same
//             configs/variants — the CI golden sweep grid plus the
//             idle-heavy stress row (30 cells)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/cli.hpp"
#include "isa/isa.hpp"
#include "machine/simulator.hpp"
#include "workloads/workload.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vltperf [--quick] [--isa NAME] [--budget-ms N]\n"
      "               [--min-speedup X] [--host-threads N] [--out FILE]\n"
      "  --quick         measure the CI golden sweep grid plus the\n"
      "                  idle-heavy stress row (mpenc,trfd,multprec,bt,\n"
      "                  stallmark) instead of every workload\n"
      "  --isa NAME      ISA frontend to build workloads for (vlt or\n"
      "                  rvv; default vlt). Workloads without a port to\n"
      "                  the frontend are pruned from the grid\n"
      "  --budget-ms N   per-cell, per-mode wall budget for repeated\n"
      "                  passes; the best (minimum) pass is reported\n"
      "                  (default 200, always at least one pass)\n"
      "  --min-speedup X fail (exit 1) unless total skip-ahead speedup\n"
      "                  over --no-skip is at least X (default: report\n"
      "                  only)\n"
      "  --host-threads N  tick independent partitions on N host threads\n"
      "                  in the skip engine (timing-neutral; --no-skip\n"
      "                  passes stay serial, so the embedded byte-compare\n"
      "                  also checks partition parallelism; default 1)\n"
      "  --out FILE      report path (default BENCH_vltperf.json)\n");
}

struct CellTiming {
  campaign::Cell cell;
  machine::RunResult result;  // from a skip-mode pass
  std::uint64_t ticks_noskip = 0;  // Processor::ticks_executed, --no-skip
  double host_ms_skip = 0.0;
  double host_ms_noskip = 0.0;
};

/// Best (minimum) Simulator::run wall time over repeated passes within
/// `budget_ms` of harness wall time; at least one pass always runs.
/// `json_out` receives the last pass's serialized result.
double measure(const machine::MachineConfig& cfg,
               const workloads::Workload& w, const Variant& variant,
               double budget_ms, machine::RunResult* result_out,
               std::string* json_out) {
  const auto start = std::chrono::steady_clock::now();
  double best = -1.0;
  while (true) {
    machine::RunResult r = machine::Simulator(cfg).run(w, variant);
    if (best < 0.0 || r.wall_ms < best) best = r.wall_ms;
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed >= budget_ms) {
      *json_out = r.to_json().dump(1);
      if (result_out != nullptr) *result_out = std::move(r);
      return best;
    }
  }
}

int run_main(int argc, char** argv) {
  bool quick = false;
  isa::IsaId isa_id = isa::IsaId::kVlt;
  double budget_ms = 200.0;
  double min_speedup = 0.0;
  unsigned host_threads = 1;
  std::string out_path = "BENCH_vltperf.json";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vltperf: %s needs a value\n", arg.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto double_value = [&]() {
      const char* v = value();
      char* end = nullptr;
      double d = std::strtod(v, &end);
      if (end == v || *end != '\0' || d <= 0.0) {
        std::fprintf(stderr, "vltperf: %s expects a positive number, got "
                             "'%s'\n", arg.c_str(), v);
        std::exit(2);
      }
      return d;
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--isa") {
      const char* v = value();
      std::optional<isa::IsaId> parsed = isa::isa_from_name(v);
      if (!parsed) {
        std::string valid;
        for (const std::string& n : isa::isa_names()) valid += " " + n;
        std::fprintf(stderr, "vltperf: unknown isa '%s' (valid:%s)\n", v,
                     valid.c_str());
        return 2;
      }
      isa_id = *parsed;
    } else if (arg == "--budget-ms") {
      budget_ms = double_value();
    } else if (arg == "--min-speedup") {
      min_speedup = double_value();
    } else if (arg == "--host-threads") {
      std::optional<unsigned> n =
          cli::parse_thread_count("vltperf", arg, value());
      if (!n) return 2;
      host_threads = *n;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vltperf: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  std::vector<std::string> workload_names =
      quick ? std::vector<std::string>{"mpenc", "trfd", "multprec", "bt",
                                       "stallmark"}
            : workloads::workload_names();
  std::vector<machine::MachineConfig> configs;
  for (const char* name : {"base", "V2-CMP", "V4-CMP"}) {
    machine::MachineConfig c = machine::MachineConfig::by_name(name);
    c.isa = isa_id;
    configs.push_back(std::move(c));
  }
  std::vector<Variant> variants;
  for (const char* v : {"base", "vlt2", "vlt4"})
    variants.push_back(*Variant::parse(v, nullptr));

  campaign::SweepSpec spec;
  spec.add_grid(configs, workload_names, variants);

  std::vector<CellTiming> timings;
  std::size_t done = 0;
  for (const campaign::Cell& cell : spec.cells()) {
    workloads::WorkloadPtr w = workloads::make_workload(cell.workload);

    CellTiming t;
    t.cell = cell;
    machine::MachineConfig cfg = cell.config;
    cfg.host_threads = host_threads;  // --no-skip ignores it (stays serial)
    std::string json_skip;
    std::string json_noskip;
    cfg.event_skip = true;
    t.host_ms_skip =
        measure(cfg, *w, cell.variant, budget_ms, &t.result, &json_skip);
    cfg.event_skip = false;
    machine::RunResult noskip;
    t.host_ms_noskip =
        measure(cfg, *w, cell.variant, budget_ms, &noskip, &json_noskip);
    t.ticks_noskip = noskip.ticks_executed;

    // Embedded equivalence oracle: skip-ahead must be invisible in every
    // reported number before its speed means anything.
    if (json_skip != json_noskip) {
      std::fprintf(stderr,
                   "vltperf: FATAL: %s results differ between skip-ahead "
                   "and --no-skip\n--- skip ---\n%s\n--- no-skip ---\n%s\n",
                   cell.key().to_string().c_str(), json_skip.c_str(),
                   json_noskip.c_str());
      return 1;
    }
    if (!t.result.ok()) {
      std::fprintf(stderr, "vltperf: FATAL: %s failed [%s]: %s\n",
                   cell.key().to_string().c_str(),
                   machine::run_status_name(t.result.status),
                   t.result.error.c_str());
      return 1;
    }

    std::fprintf(stderr,
                 "[%3zu/%zu] %-40s skip %8.2f ms  no-skip %8.2f ms  "
                 "(%.1fx)\n",
                 ++done, spec.size(), cell.key().to_string().c_str(),
                 t.host_ms_skip, t.host_ms_noskip,
                 t.host_ms_noskip / std::max(t.host_ms_skip, 1e-6));
    timings.push_back(std::move(t));
  }

  double total_skip = 0.0;
  double total_noskip = 0.0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_insts = 0;
  Json cells = Json::array();
  for (const CellTiming& t : timings) {
    total_skip += t.host_ms_skip;
    total_noskip += t.host_ms_noskip;
    total_cycles += t.result.cycles;
    const std::uint64_t insts = t.result.scalar_insts + t.result.vector_insts;
    total_insts += insts;

    Json c = Json::object();
    c.set("workload", t.cell.workload);
    c.set("config", t.cell.config.name);
    c.set("variant", t.cell.variant.to_string());
    c.set("cycles", t.result.cycles);
    c.set("insts", insts);
    // Engine cost split (v2): loop iterations each mode actually executed
    // — ticks_noskip equals simulated cycles, ticks_skip is what skipping
    // could not eliminate — and the next_event scans the skip engine paid
    // for the elimination.
    c.set("ticks_skip", t.result.ticks_executed);
    c.set("ticks_noskip", t.ticks_noskip);
    c.set("scans", t.result.scans);
    c.set("host_ms_skip", t.host_ms_skip);
    c.set("host_ms_noskip", t.host_ms_noskip);
    c.set("speedup", t.host_ms_noskip / std::max(t.host_ms_skip, 1e-6));
    c.set("mcycles_per_s", static_cast<double>(t.result.cycles) / 1e6 /
                               std::max(t.host_ms_skip, 1e-6) * 1e3);
    cells.push_back(std::move(c));
  }

  const double speedup = total_noskip / std::max(total_skip, 1e-6);
  Json report = Json::object();
  report.set("schema", "vltperf-v2");
  report.set("grid", quick ? "quick" : "full");
  report.set("isa", isa::isa_name(isa_id));
  report.set("budget_ms", budget_ms);
  report.set("host_threads", static_cast<std::uint64_t>(host_threads));
  report.set("cells", std::move(cells));
  Json total = Json::object();
  total.set("cells", static_cast<std::uint64_t>(timings.size()));
  total.set("sim_cycles", total_cycles);
  total.set("insts", total_insts);
  total.set("host_ms_skip", total_skip);
  total.set("host_ms_noskip", total_noskip);
  total.set("speedup", speedup);
  total.set("mcycles_per_s", static_cast<double>(total_cycles) / 1e6 /
                                 std::max(total_skip, 1e-6) * 1e3);
  total.set("insts_per_s", static_cast<double>(total_insts) /
                               std::max(total_skip, 1e-6) * 1e3);
  report.set("total", std::move(total));

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "vltperf: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report.dump(1) << "\n";

  std::fprintf(stderr,
               "vltperf: %zu cells, %.1f Mcycles/s (skip) vs %.1f "
               "Mcycles/s (no-skip), total speedup %.2fx -> %s\n",
               timings.size(),
               static_cast<double>(total_cycles) / 1e6 /
                   std::max(total_skip, 1e-6) * 1e3,
               static_cast<double>(total_cycles) / 1e6 /
                   std::max(total_noskip, 1e-6) * 1e3,
               speedup, out_path.c_str());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    // Name the worst cell so a regression points at a workload/config
    // pair instead of just a moved total.
    const CellTiming* worst = nullptr;
    double worst_speedup = 0.0;
    for (const CellTiming& t : timings) {
      const double s = t.host_ms_noskip / std::max(t.host_ms_skip, 1e-6);
      if (worst == nullptr || s < worst_speedup) {
        worst = &t;
        worst_speedup = s;
      }
    }
    std::fprintf(stderr,
                 "vltperf: FAILED: total speedup %.2fx is below the "
                 "--min-speedup %.2fx gate (worst cell: %s at %.2fx)\n",
                 speedup, min_speedup,
                 worst != nullptr ? worst->cell.key().to_string().c_str()
                                  : "none",
                 worst_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const vlt::SimError& e) {
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
