// vltlint — static analyzer for VLT phase-structured programs.
//
//   vltlint [workload...] [--variant V]... [--isa NAME]
//           [--only CHECK]... [--suppress CHECK[@WORKLOAD]]... [--json]
//           [--table-only] [--no-table] [--list-checks] [--list]
//
// With no workloads named, lints all nine applications across every
// variant each one supports (base, vlt2, vlt4, lanes8, su4) under every
// ISA frontend each one has a port to (RVV builds are qualified
// ":rvv"), plus the opcode-metadata closure. --isa restricts the sweep
// to one frontend. Checks, the finding JSON schema, and the suppression
// syntax are documented in docs/LINT.md.
//
// Exit codes: 0 no findings, 1 findings reported, 2 usage,
// 3 internal error.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/checks.hpp"
#include "common/error.hpp"
#include "isa/isa.hpp"
#include "workloads/workload.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vltlint [workload...] [--variant V]... [--isa NAME]\n"
      "               [--only CHECK]... [--suppress CHECK[@WORKLOAD]]...\n"
      "               [--json] [--table-only] [--no-table]\n"
      "               [--list-checks] [--list]\n"
      "  workloads: all nine applications plus fault.* injectors\n"
      "             (default: the nine applications)\n"
      "  variants:  %s (default: every variant the workload supports)\n"
      "  --isa NAME:        lint builds for one ISA frontend only (vlt or\n"
      "                     rvv; default: every frontend the workload has\n"
      "                     a port to)\n"
      "  --only CHECK:      run only the named check (repeatable)\n"
      "  --suppress SPEC:   drop findings of CHECK, or CHECK@WORKLOAD\n"
      "                     to scope to one workload; '*' matches any\n"
      "                     check (repeatable)\n"
      "  --json:            machine-readable report on stdout\n"
      "  --table-only:      only the opcode-metadata closure checks\n"
      "  --no-table:        skip the opcode-metadata closure checks\n"
      "  --list-checks:     print every check id with its description\n"
      "  --list:            print the default workload set\n",
      Variant::spec_help().c_str());
}

/// The canonical variant sweep: one spelling of each decomposition kind at
/// the paper's headline thread counts. Workloads filter by supports().
std::vector<Variant> canonical_variants() {
  return {Variant::base(), Variant::vector_threads(2),
          Variant::vector_threads(4), Variant::lane_threads(8),
          Variant::su_threads(4)};
}

int run_main(int argc, char** argv) {
  std::vector<std::string> workload_names;
  std::vector<Variant> variants;
  std::vector<analysis::Suppression> suppressions;
  analysis::AnalysisOptions opts;
  std::optional<isa::IsaId> isa_filter;
  bool json = false;
  bool table_only = false;
  bool no_table = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const analysis::CheckInfo& c : analysis::check_infos())
        std::printf("%-16s %s\n", c.name, c.description);
      return 0;
    }
    if (arg == "--list") {
      for (const std::string& n : workloads::workload_names())
        std::printf("%s\n", n.c_str());
      return 0;
    }
    if (arg == "--variant" && i + 1 < argc) {
      std::string err;
      std::optional<Variant> parsed = Variant::parse(argv[++i], &err);
      if (!parsed) {
        std::fprintf(stderr, "vltlint: %s\n", err.c_str());
        return 2;
      }
      variants.push_back(*parsed);
    } else if (arg == "--isa" && i + 1 < argc) {
      const char* v = argv[++i];
      std::optional<isa::IsaId> parsed = isa::isa_from_name(v);
      if (!parsed) {
        std::string valid;
        for (const std::string& n : isa::isa_names()) valid += " " + n;
        std::fprintf(stderr, "vltlint: unknown isa '%s' (valid:%s)\n", v,
                     valid.c_str());
        return 2;
      }
      isa_filter = *parsed;
    } else if (arg == "--only" && i + 1 < argc) {
      opts.only.push_back(argv[++i]);
    } else if (arg == "--suppress" && i + 1 < argc) {
      analysis::Suppression s;
      if (!analysis::Suppression::parse(argv[++i], s)) {
        std::fprintf(stderr,
                     "vltlint: --suppress expects CHECK or CHECK@WORKLOAD, "
                     "got '%s'\n", argv[i]);
        return 2;
      }
      suppressions.push_back(std::move(s));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--table-only") {
      table_only = true;
    } else if (arg == "--no-table") {
      no_table = true;
    } else if (!arg.empty() && arg[0] != '-') {
      workload_names.push_back(arg);
    } else {
      usage();
      return 2;
    }
  }
  if (table_only && no_table) {
    std::fprintf(stderr, "vltlint: --table-only and --no-table conflict\n");
    return 2;
  }

  std::vector<analysis::Finding> findings;

  if (!table_only) {
    if (workload_names.empty()) workload_names = workloads::workload_names();
    const std::vector<Variant> sweep =
        variants.empty() ? canonical_variants() : variants;

    for (const std::string& name : workload_names) {
      workloads::WorkloadPtr w = workloads::find_workload(name);
      if (w == nullptr) {
        std::fprintf(stderr, "vltlint: unknown workload '%s'\n",
                     name.c_str());
        return 2;
      }
      bool any = false;
      for (isa::IsaId id : {isa::IsaId::kVlt, isa::IsaId::kRvv}) {
        if (isa_filter && *isa_filter != id) continue;
        if (!w->supports_isa(id)) continue;
        for (const Variant& v : sweep) {
          if (!w->supports(v.kind)) continue;
          any = true;
          machine::ParallelProgram prog = w->build(v, id);
          // Qualify the name with the variant (and non-default frontend)
          // so a finding names the exact build it came from.
          prog.name = name + ":" + v.to_string();
          if (id != isa::IsaId::kVlt)
            prog.name += std::string(":") + isa::isa_name(id);
          std::vector<analysis::Finding> fs = analysis::analyze(prog, opts);
          findings.insert(findings.end(),
                          std::make_move_iterator(fs.begin()),
                          std::make_move_iterator(fs.end()));
        }
      }
      if (!any && isa_filter && !w->supports_isa(*isa_filter)) {
        std::fprintf(stderr,
                     "vltlint: %s has no port to the %s ISA frontend "
                     "(skipped)\n", name.c_str(),
                     isa::isa_name(*isa_filter));
      } else if (!any && !variants.empty()) {
        std::fprintf(stderr,
                     "vltlint: %s supports none of the requested variants "
                     "(skipped)\n", name.c_str());
      }
    }
  }

  if (!no_table) {
    std::vector<analysis::Finding> fs = analysis::check_isa_tables();
    for (analysis::Finding& f : fs) {
      const bool keep =
          opts.only.empty() ||
          std::find(opts.only.begin(), opts.only.end(), f.check) !=
              opts.only.end();
      if (keep) findings.push_back(std::move(f));
    }
  }

  std::size_t suppressed = 0;
  findings =
      analysis::apply_suppressions(std::move(findings), suppressions,
                                   &suppressed);

  if (json) {
    Json report = analysis::findings_to_json(findings);
    report.set("suppressed", static_cast<std::uint64_t>(suppressed));
    std::printf("%s\n", report.dump(1).c_str());
  } else {
    for (const analysis::Finding& f : findings)
      std::printf("%s\n", f.to_string().c_str());
    std::printf("vltlint: %zu finding(s)%s\n", findings.size(),
                suppressed > 0
                    ? (" (" + std::to_string(suppressed) + " suppressed)")
                          .c_str()
                    : "");
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const vlt::SimError& e) {
    std::fprintf(stderr, "vltlint fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
