// Build-time ISA lint: statically verifies that the opcode table is closed.
//
// Every opcode must have a table entry (name, functional unit, latency),
// a disassembly, and functional semantics in the executor. The table is a
// positional aggregate — deleting an entry shifts the initializers and
// value-initializes the tail, which this tool catches as a missing name.
// Runs under ctest; a non-zero exit fails the build's test stage.
#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "common/error.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/disasm.hpp"
#include "isa/opcode.hpp"

namespace {

int failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "isa_lint: %s\n", what.c_str());
  ++failures;
}

int run_main();

}  // namespace

int main() {
  try {
    return run_main();
  } catch (const vlt::SimError& e) {
    // E.g. the executor's invalid-opcode check for an opcode with no
    // semantics — a lint failure, reported in the simulator's fatal shape.
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}

namespace {

int run_main() {
  using namespace vlt;
  using isa::Opcode;

  // --- table closure: every opcode has a complete OpInfo entry ---
  std::set<std::string> names;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr || info.name[0] == '\0') {
      fail("opcode " + std::to_string(i) +
           " has no table entry (name missing) — was an initializer "
           "removed from kTable?");
      continue;
    }
    if (info.latency == 0)
      fail(std::string(info.name) + ": latency entry is zero");
    if (!names.insert(info.name).second)
      fail(std::string(info.name) + ": duplicate mnemonic in the table");

    // FU-class / kind consistency.
    const bool vec_kind = info.kind == isa::OpKind::kVecArith ||
                          info.kind == isa::OpKind::kVecRed ||
                          info.kind == isa::OpKind::kVecMem;
    const bool vec_fu = info.fu == isa::FuClass::kVAlu0 ||
                        info.fu == isa::FuClass::kVAlu1 ||
                        info.fu == isa::FuClass::kVAlu2 ||
                        info.fu == isa::FuClass::kVMem;
    if (vec_kind != vec_fu)
      fail(std::string(info.name) +
           ": vector kind and functional-unit class disagree");
    if (info.kind == isa::OpKind::kVecMem && info.fu != isa::FuClass::kVMem)
      fail(std::string(info.name) + ": vector memory op not on the vLSU");
  }

  // --- disassembler closure: every opcode renders its mnemonic ---
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr) continue;  // already reported above
    isa::Instruction inst;
    inst.op = op;
    std::string text = isa::disassemble(inst);
    if (text.empty() || text.find(info.name) == std::string::npos)
      fail(std::string(info.name) +
           ": disassembly does not render the mnemonic (got '" + text + "')");
  }

  // --- executor closure: every opcode has functional semantics ---
  // Execute each opcode once from a zeroed state. A missing switch case
  // falls through to the executor's invalid-opcode check, whose SimError
  // exits this tool through the fatal handler — ctest reports the nonzero
  // exit as a failure. Vector semantics must account for every element
  // (res.elems == VL).
  func::FuncMemory mem;
  func::Executor exec(mem);
  std::vector<Addr> addrs;
  const unsigned kVl = 4;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr) continue;
    func::ArchState st;
    st.set_vl(kVl);
    st.set_pc(8);
    func::ExecContext ctx{/*tid=*/0, /*nthreads=*/1, /*max_vl=*/kVl};
    isa::Instruction inst;
    inst.op = op;
    func::ExecResult res = exec.execute(inst, st, ctx, addrs);

    const bool vec = isa::is_vector(op);
    if (vec && res.elems != kVl)
      fail(std::string(info.name) + ": executor accounted " +
           std::to_string(res.elems) + " elements for VL " +
           std::to_string(kVl));
    if (!vec && res.elems != 0)
      fail(std::string(info.name) + ": scalar op reported " +
           std::to_string(res.elems) + " vector elements");
    if (isa::is_mem(op) && vec && addrs.size() != kVl)
      fail(std::string(info.name) + ": vector memory op produced " +
           std::to_string(addrs.size()) + " addresses for VL " +
           std::to_string(kVl));
    if (op == Opcode::kHalt && !res.halted)
      fail("halt: executor did not halt");
    if (res.next_pc == 8 && op != Opcode::kJr)
      fail(std::string(info.name) + ": executor did not advance the pc");
  }

  if (failures == 0) {
    std::printf("isa_lint: %zu opcodes verified (table, disasm, executor)\n",
                isa::kNumOpcodes);
    return 0;
  }
  std::fprintf(stderr, "isa_lint: %d failure(s)\n", failures);
  return 1;
}

}  // namespace
