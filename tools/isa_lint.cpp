// isa_lint — thin wrapper over the analyzer's opcode-metadata closure
// checks (analysis::check_isa_tables). Kept as its own binary so the
// long-standing `isa_lint` ctest name survives; the checks themselves
// live in src/analysis/table_checks.cpp and also run under `vltlint`.
#include <cstdio>

#include "analysis/checks.hpp"
#include "common/error.hpp"
#include "isa/opcode.hpp"

int main() {
  try {
    std::vector<vlt::analysis::Finding> findings =
        vlt::analysis::check_isa_tables();
    for (const vlt::analysis::Finding& f : findings)
      std::fprintf(stderr, "isa_lint: %s\n", f.to_string().c_str());
    if (findings.empty()) {
      std::printf(
          "isa_lint: %zu opcodes verified (table, disasm, executor)\n",
          vlt::isa::kNumOpcodes);
      return 0;
    }
    std::fprintf(stderr, "isa_lint: %zu failure(s)\n", findings.size());
    return 1;
  } catch (const vlt::SimError& e) {
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
