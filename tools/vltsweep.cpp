// vltsweep — parallel experiment-campaign driver: run a workload ×
// config × variant grid across a host thread pool, with a
// content-addressed on-disk result cache, and emit JSON or CSV.
//
//   vltsweep [--workloads a,b|all] [--configs x,y|all] [--variants v,..]
//            [--threads N] [--cache DIR] [--no-cache] [--force]
//            [--format json|csv] [--out FILE] [--quiet] [--list]
//
// The grid is pruned to runnable cells (workload supports the variant
// kind, config has the hardware), so `--workloads all --configs all
// --variants base,vlt2,vlt4,lanes8,su4` reproduces the paper's whole
// design space in one command. Output bytes are independent of --threads.
//
// Examples:
//   vltsweep                               # default: full Figure-5 grid
//   vltsweep --workloads mpenc,bt --configs base,V4-CMP \
//            --variants base,vlt4 --threads 4 --out sweep.json
//   vltsweep --workloads all --configs all --variants base,vlt2,vlt4 \
//            --cache .vltsweep-cache --format csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

void usage() {
  std::string configs;
  for (const std::string& n : machine::MachineConfig::preset_names())
    configs += " " + n;
  std::string workloads_list;
  for (const std::string& n : workloads::workload_names())
    workloads_list += " " + n;
  std::fprintf(
      stderr,
      "usage: vltsweep [--workloads LIST|all] [--configs LIST|all]\n"
      "                [--variants LIST] [--threads N] [--cache DIR]\n"
      "                [--no-cache] [--force] [--format json|csv]\n"
      "                [--out FILE] [--quiet] [--list]\n"
      "  workloads:%s\n"
      "  configs:  %s\n"
      "  variants: %s\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --cache DIR   result-cache directory (default .vltsweep-cache;\n"
      "                --no-cache disables, --force re-simulates)\n"
      "  --list        print the cells the spec expands to, then exit\n",
      workloads_list.c_str(), configs.c_str(), Variant::spec_help().c_str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workloads_arg = "all";
  std::string configs_arg;
  std::string variants_arg = "base,vlt2,vlt4";
  std::string format = "json";
  std::string out_path;
  campaign::CampaignOptions opts;
  opts.cache_dir = ".vltsweep-cache";
  bool quiet = false;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vltsweep: %s needs a value\n", arg.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workloads") {
      workloads_arg = value();
    } else if (arg == "--configs") {
      configs_arg = value();
    } else if (arg == "--variants") {
      variants_arg = value();
    } else if (arg == "--threads") {
      const char* v = value();
      char* end = nullptr;
      long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1 || n > 1024) {
        std::fprintf(stderr,
                     "vltsweep: --threads expects an integer in [1,1024], "
                     "got '%s'\n", v);
        return 2;
      }
      opts.threads = static_cast<unsigned>(n);
    } else if (arg == "--cache") {
      opts.cache_dir = value();
    } else if (arg == "--no-cache") {
      opts.cache_dir.clear();
    } else if (arg == "--force") {
      opts.force = true;
    } else if (arg == "--format") {
      format = value();
      if (format != "json" && format != "csv") {
        std::fprintf(stderr, "vltsweep: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vltsweep: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  // --- resolve the grid ---
  std::vector<std::string> workload_names =
      workloads_arg == "all" ? workloads::workload_names()
                             : split_csv(workloads_arg);
  for (const std::string& name : workload_names) {
    bool known = false;
    for (const std::string& k : workloads::workload_names())
      known = known || k == name;
    if (!known) {
      std::fprintf(stderr, "vltsweep: unknown workload '%s'\n", name.c_str());
      return 2;
    }
  }

  std::vector<std::string> config_names;
  if (configs_arg.empty() || configs_arg == "all") {
    // Default grid: every preset that can run vector code (CMT joins in
    // only when an suN variant asks for it).
    config_names = machine::MachineConfig::preset_names();
  } else {
    config_names = split_csv(configs_arg);
  }
  std::vector<machine::MachineConfig> configs;
  for (const std::string& name : config_names) {
    std::optional<machine::MachineConfig> c =
        machine::MachineConfig::find(name);
    if (!c) {
      std::string valid;
      for (const std::string& n : machine::MachineConfig::preset_names())
        valid += " " + n;
      std::fprintf(stderr,
                   "vltsweep: unknown config '%s' (valid:%s)\n",
                   name.c_str(), valid.c_str());
      return 2;
    }
    configs.push_back(std::move(*c));
  }

  std::vector<Variant> variants;
  for (const std::string& v : split_csv(variants_arg)) {
    std::string err;
    std::optional<Variant> parsed = Variant::parse(v, &err);
    if (!parsed) {
      std::fprintf(stderr, "vltsweep: %s\n", err.c_str());
      return 2;
    }
    variants.push_back(*parsed);
  }

  campaign::SweepSpec spec;
  spec.add_grid(configs, workload_names, variants);
  if (spec.empty()) {
    std::fprintf(stderr,
                 "vltsweep: the requested grid has no runnable cells\n");
    return 2;
  }

  if (list_only) {
    for (const campaign::Cell& cell : spec.cells())
      std::printf("%s\n", cell.key().to_string().c_str());
    return 0;
  }

  if (!quiet)
    opts.progress = [](std::size_t done, std::size_t total,
                       const campaign::RunKey& key, bool hit) {
      std::fprintf(stderr, "[%3zu/%zu] %-40s %s\n", done, total,
                   key.to_string().c_str(), hit ? "(cached)" : "");
    };

  campaign::RunSet set = campaign::Campaign(opts).run(spec);

  std::string output = format == "csv" ? set.to_csv()
                                       : set.to_json().dump(1) + "\n";
  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "vltsweep: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << output;
  }

  if (!quiet)
    std::fprintf(stderr,
                 "vltsweep: %zu cells (%zu simulated, %zu from cache)%s\n",
                 set.size(), set.cache_misses(), set.cache_hits(),
                 set.all_verified() ? "" : " — VERIFICATION FAILURES");
  return set.all_verified() ? 0 : 1;
}
