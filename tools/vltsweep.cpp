// vltsweep — parallel experiment-campaign driver: run a workload ×
// config × variant grid across a host thread pool, with a
// content-addressed on-disk result cache, and emit JSON or CSV.
//
//   vltsweep [--workloads a,b|all] [--configs x,y|all] [--variants v,..]
//            [--isa i,j|all] [--threads N] [--cache DIR] [--no-cache]
//            [--force] [--fail-fast] [--max-retries N]
//            [--cell-cycle-limit N] [--journal FILE] [--no-journal]
//            [--resume] [--no-skip] [--wall] [--format json|csv]
//            [--out FILE] [--quiet] [--list]
//
// The grid is pruned to runnable cells (workload supports the variant
// kind, config has the hardware), so `--workloads all --configs all
// --variants base,vlt2,vlt4,lanes8,su4` reproduces the paper's whole
// design space in one command. Output bytes are independent of --threads.
//
// Failed cells (verification, invariant, timeout, ...) are isolated:
// the sweep completes, the report carries per-cell status, the exit code
// is 1, and a summary lists the failures (docs/ERRORS.md). A killed
// sweep resumes from its journal with --resume, byte-identically;
// resuming against a journal written for a *different* grid exits 2 with
// a message naming both spec digests.
//
// `vltsweep --worker` turns the process into a vltshard worker: it
// resolves the same grid (proving it via the spec-digest handshake),
// then executes cells assigned over stdin, reporting on stdout
// (src/shard/worker.hpp, docs/SHARD.md). Humans never pass --worker;
// the vltshard coordinator spawns these.
//
// Examples:
//   vltsweep                               # default: full Figure-5 grid
//   vltsweep --workloads mpenc,bt --configs base,V4-CMP \
//            --variants base,vlt4 --threads 4 --out sweep.json
//   vltsweep --workloads all --configs all --variants base,vlt2,vlt4 \
//            --cache .vltsweep-cache --format csv
//   vltsweep --workloads mxm,radix,trfd --isa vlt,rvv  # sweep the isa axis
//   vltsweep --resume --out sweep.json     # continue a killed sweep
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/grid.hpp"
#include "common/cli.hpp"
#include "shard/worker.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

void usage() {
  std::string configs;
  for (const std::string& n : machine::MachineConfig::preset_names())
    configs += " " + n;
  std::string workloads_list;
  for (const std::string& n : workloads::workload_names())
    workloads_list += " " + n;
  std::string isas;
  for (const std::string& n : isa::isa_names()) isas += " " + n;
  std::fprintf(
      stderr,
      "usage: vltsweep [--workloads LIST|all] [--configs LIST|all]\n"
      "                [--variants LIST] [--isa LIST|all] [--threads N]\n"
      "                [--cache DIR] [--no-cache] [--force] [--fail-fast]\n"
      "                [--max-retries N] [--cell-cycle-limit N]\n"
      "                [--journal FILE] [--no-journal] [--resume]\n"
      "                [--checkpoint-every N]\n"
      "                [--no-skip] [--wall] [--format json|csv]\n"
      "                [--out FILE] [--quiet] [--list]\n"
      "  workloads:%s\n"
      "  configs:  %s\n"
      "  variants: %s\n"
      "  --isa LIST    ISA frontends to sweep (%s; default vlt). Cells\n"
      "                whose workload has no port to a frontend are\n"
      "                pruned from the grid (docs/ISA.md)\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --cache DIR   result-cache directory (default .vltsweep-cache;\n"
      "                --no-cache disables, --force re-simulates)\n"
      "  --fail-fast   stop launching cells after the first failure\n"
      "                (unstarted cells report status \"skipped\")\n"
      "  --max-retries N   extra attempts per failed cell (default 0)\n"
      "  --cell-cycle-limit N   per-cell cycle budget (default: the\n"
      "                machine config's limit; exceeding it fails the\n"
      "                cell with status \"timeout\")\n"
      "  --journal F   completed-cell journal (default\n"
      "                .vltsweep-journal.jsonl; --no-journal disables)\n"
      "  --resume      replay completed cells from the journal, run the\n"
      "                rest (byte-identical output to an unkilled sweep)\n"
      "  --checkpoint-every N   snapshot each in-flight cell's machine\n"
      "                every N simulated cycles next to the journal;\n"
      "                --resume restores unfinished cells mid-run\n"
      "                instead of from cycle zero (docs/CKPT.md)\n"
      "  --no-skip     tick every cycle instead of event-driven\n"
      "                skip-ahead (timing-neutral oracle, docs/PERF.md)\n"
      "  --wall        add each cell's host wall-clock ms to the report\n"
      "                (nondeterministic; 0 for cached/resumed cells)\n"
      "  --list        print the cells the spec expands to, then exit\n"
      "  --worker      vltshard worker mode: execute cells assigned over\n"
      "                stdin/stdout (spawned by vltshard, docs/SHARD.md;\n"
      "                with --worker-id N, --heartbeat-ms N)\n",
      workloads_list.c_str(), configs.c_str(), Variant::spec_help().c_str(),
      isas.c_str());
}

int run_main(int argc, char** argv) {
  campaign::GridRequest grid;
  std::string format = "json";
  std::string out_path;
  campaign::CampaignOptions opts;
  opts.cache_dir = ".vltsweep-cache";
  opts.journal_path = ".vltsweep-journal.jsonl";
  bool quiet = false;
  bool list_only = false;
  bool wall = false;
  bool worker_mode = false;
  bool journal_explicit = false;
  shard::WorkerOptions worker;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vltsweep: %s needs a value\n", arg.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto uint_value = [&](long min, long max) -> unsigned long {
      const char* v = value();
      char* end = nullptr;
      long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < min || n > max) {
        std::fprintf(stderr,
                     "vltsweep: %s expects an integer in [%ld,%ld], "
                     "got '%s'\n", arg.c_str(), min, max, v);
        std::exit(2);
      }
      return static_cast<unsigned long>(n);
    };
    if (arg == "--workloads") {
      grid.workloads = value();
    } else if (arg == "--configs") {
      grid.configs = value();
    } else if (arg == "--variants") {
      grid.variants = value();
    } else if (arg == "--isa") {
      grid.isas = value();
    } else if (arg == "--threads") {
      std::optional<unsigned> n =
          cli::parse_thread_count("vltsweep", arg, value());
      if (!n) return 2;
      opts.threads = *n;
    } else if (arg == "--cache") {
      opts.cache_dir = value();
    } else if (arg == "--no-cache") {
      opts.cache_dir.clear();
    } else if (arg == "--force") {
      opts.force = true;
    } else if (arg == "--fail-fast") {
      opts.fail_fast = true;
    } else if (arg == "--max-retries") {
      opts.max_retries = static_cast<unsigned>(uint_value(0, 100));
    } else if (arg == "--cell-cycle-limit") {
      const char* v = value();
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltsweep: --cell-cycle-limit expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      opts.cell_cycle_limit = static_cast<Cycle>(n);
    } else if (arg == "--journal") {
      opts.journal_path = value();
      journal_explicit = true;
    } else if (arg == "--no-journal") {
      opts.journal_path.clear();
      journal_explicit = true;
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--checkpoint-every") {
      const char* v = value();
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltsweep: --checkpoint-every expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      opts.checkpoint_every = static_cast<Cycle>(n);
    } else if (arg == "--no-skip") {
      grid.no_skip = true;
    } else if (arg == "--wall") {
      wall = true;
    } else if (arg == "--format") {
      format = value();
      if (format != "json" && format != "csv") {
        std::fprintf(stderr, "vltsweep: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--worker-id") {
      worker.worker_id = static_cast<int>(uint_value(0, 1 << 20));
    } else if (arg == "--heartbeat-ms") {
      worker.heartbeat_ms = static_cast<unsigned>(uint_value(1, 60000));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vltsweep: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (opts.resume && opts.journal_path.empty()) {
    std::fprintf(stderr, "vltsweep: --resume needs a journal "
                         "(drop --no-journal)\n");
    return 2;
  }
  if (opts.checkpoint_every > 0 && opts.journal_path.empty()) {
    std::fprintf(stderr, "vltsweep: --checkpoint-every needs a journal "
                         "(drop --no-journal)\n");
    return 2;
  }

  std::string grid_err;
  std::optional<campaign::SweepSpec> spec =
      campaign::resolve_grid(grid, &grid_err);
  if (!spec) {
    std::fprintf(stderr, "vltsweep: %s\n", grid_err.c_str());
    return 2;
  }

  if (list_only) {
    for (const campaign::Cell& cell : spec->cells())
      std::printf("%s\n", cell.key().to_string().c_str());
    return 0;
  }

  if (worker_mode) {
    // Worker mode owns stdout for the protocol; everything a human
    // would see goes nowhere. The coordinator passes the shard journal
    // explicitly (--journal / --no-journal); the interactive default
    // must not leak in, or every worker would truncate the same file.
    worker.journal_path = journal_explicit ? opts.journal_path : "";
    worker.cell = opts;
    worker.cell.journal_path.clear();
    worker.cell.resume = false;
    return shard::run_worker(*spec, worker);
  }

  // Deterministic mid-sweep kill for the resume tests: SIGKILL this
  // process after N cells complete, leaving the journal behind.
  long kill_after = 0;
  if (const char* k = std::getenv("VLTSWEEP_KILL_AFTER"))
    kill_after = std::strtol(k, nullptr, 10);

  if (!quiet || kill_after > 0)
    opts.progress = [quiet, kill_after](std::size_t done, std::size_t total,
                                        const campaign::RunKey& key,
                                        bool hit) {
      if (!quiet)
        std::fprintf(stderr, "[%3zu/%zu] %-40s %s\n", done, total,
                     key.to_string().c_str(), hit ? "(cached)" : "");
      if (kill_after > 0 && done >= static_cast<std::size_t>(kill_after))
        std::raise(SIGKILL);
    };

  campaign::RunSet set;
  try {
    set = campaign::Campaign(opts).run(*spec);
  } catch (const vlt::SimError& e) {
    if (e.kind() == ErrorKind::kConfig) {
      // Usage-class failure (the classic case: --resume against a
      // journal written for a different grid), not a simulator bug:
      // plain message, exit 2, like any other bad invocation.
      std::fprintf(stderr, "vltsweep: %s\n", e.message().c_str());
      return 2;
    }
    throw;
  }

  std::string output = format == "csv"
                           ? set.to_csv(wall)
                           : set.to_json(wall).dump(1) + "\n";
  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "vltsweep: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << output;
  }

  if (!quiet) {
    std::string resumed;
    if (set.resumed() > 0)
      resumed = ", " + std::to_string(set.resumed()) + " resumed";
    std::fprintf(stderr,
                 "vltsweep: %zu cells (%zu simulated, %zu from cache%s)\n",
                 set.size(), set.cache_misses(), set.cache_hits(),
                 resumed.c_str());
  }
  if (!set.all_ok()) {
    std::fprintf(stderr, "vltsweep: %zu of %zu cells FAILED:\n",
                 set.failures(), set.size());
    for (const machine::RunResult& r : set.results())
      if (!r.ok())
        std::fprintf(stderr, "  %s/%s/%s [%s] %s\n", r.workload.c_str(),
                     r.config.c_str(), r.variant.c_str(),
                     machine::run_status_name(r.status), r.error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const vlt::SimError& e) {
    // Same shape vlt::fatal prints, but through the typed error path.
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
