// vltshard — fault-tolerant sharded campaign driver: the vltsweep grid,
// executed across a pool of supervised worker *processes* instead of
// threads, surviving worker crashes, hangs, protocol corruption, and a
// SIGKILL of the coordinator itself (docs/SHARD.md).
//
//   vltshard --worker-binary PATH [grid flags as in vltsweep]
//            [--workers N] [--worker-retries N] [--heartbeat-ms N]
//            [--worker-timeout-ms N] [--backoff-ms N]
//            [--journal-base BASE] [--no-journal] [--resume]
//            [--cache DIR] [--no-cache] [--force] [--max-retries N]
//            [--cell-cycle-limit N] [--format json|csv] [--out FILE]
//            [--stats-out FILE] [--quiet] [--list]
//
// The merged report is byte-identical to the same grid run by serial
// vltsweep: results aggregate in spec order, worker crash/retry
// accounting lives only in the shard.* counters (--stats-out), and a
// poison cell that keeps killing workers is quarantined after
// --worker-retries extra attempts with status "worker" rather than
// looping forever. Exit codes match vltsweep: 0 all ok, 1 failed cells
// (including quarantined ones), 2 usage / foreign resume journal /
// worker grid mismatch, 3 internal error.
//
// Examples:
//   vltshard --worker-binary build/tools/vltsweep --workers 4 \
//            --workloads mpenc,trfd --configs base,V4-CMP \
//            --variants base,vlt4 --out shard.json
//   vltshard --worker-binary build/tools/vltsweep --resume --out shard.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/grid.hpp"
#include "common/cli.hpp"
#include "shard/coordinator.hpp"

using namespace vlt;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vltshard --worker-binary PATH [grid flags as in vltsweep]\n"
      "                [--workers N] [--worker-retries N]\n"
      "                [--heartbeat-ms N] [--worker-timeout-ms N]\n"
      "                [--backoff-ms N] [--journal-base BASE]\n"
      "                [--no-journal] [--resume] [--checkpoint-every N]\n"
      "                [--cache DIR]\n"
      "                [--no-cache] [--force] [--max-retries N]\n"
      "                [--cell-cycle-limit N] [--format json|csv]\n"
      "                [--out FILE] [--stats-out FILE] [--quiet] [--list]\n"
      "  --worker-binary P   the vltsweep binary to spawn as workers\n"
      "                      (required unless --list)\n"
      "  --workers N         worker processes (default 4)\n"
      "  --worker-retries N  extra attempts for a cell whose worker died\n"
      "                      before quarantining it as poison (default 2)\n"
      "  --heartbeat-ms N    worker heartbeat period (default 250)\n"
      "  --worker-timeout-ms N   silence window before a worker is\n"
      "                      declared lost and killed (default 10000)\n"
      "  --backoff-ms N      respawn backoff base, doubling per\n"
      "                      consecutive crash (default 100)\n"
      "  --journal-base B    shard journals land in B.w<id>.jsonl and the\n"
      "                      merged journal in B.merged.jsonl (default\n"
      "                      .vltshard-journal; --no-journal disables)\n"
      "  --resume            merge surviving shard journals from a killed\n"
      "                      coordinator, run only the rest\n"
      "  --checkpoint-every N   workers snapshot their in-flight cell\n"
      "                      every N simulated cycles; when a worker\n"
      "                      dies mid-cell its replacement resumes from\n"
      "                      the last snapshot instead of cycle zero\n"
      "                      (needs journaling, docs/CKPT.md)\n"
      "  --stats-out F       write the shard.* supervision counters (and\n"
      "                      cache.quarantined) as JSON to F\n"
      "  grid flags          --workloads/--configs/--variants/--isa/\n"
      "                      --no-skip, exactly as vltsweep\n");
}

int run_main(int argc, char** argv) {
  campaign::GridRequest grid;
  shard::ShardOptions opts;
  std::string format = "json";
  std::string out_path;
  std::string stats_path;
  bool no_journal = false;
  bool list_only = false;
  opts.cell.cache_dir = ".vltsweep-cache";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vltshard: %s needs a value\n", arg.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto uint_value = [&](long min, long max) -> unsigned long {
      const char* v = value();
      char* end = nullptr;
      long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < min || n > max) {
        std::fprintf(stderr,
                     "vltshard: %s expects an integer in [%ld,%ld], "
                     "got '%s'\n", arg.c_str(), min, max, v);
        std::exit(2);
      }
      return static_cast<unsigned long>(n);
    };
    if (arg == "--workloads") {
      grid.workloads = value();
    } else if (arg == "--configs") {
      grid.configs = value();
    } else if (arg == "--variants") {
      grid.variants = value();
    } else if (arg == "--isa") {
      grid.isas = value();
    } else if (arg == "--no-skip") {
      grid.no_skip = true;
    } else if (arg == "--worker-binary") {
      opts.worker_binary = value();
    } else if (arg == "--workers") {
      std::optional<unsigned> n = cli::parse_count("vltshard", arg, value(),
                                                   1, 256);
      if (!n) return 2;
      opts.workers = *n;
    } else if (arg == "--worker-retries") {
      opts.worker_retries = static_cast<unsigned>(uint_value(0, 100));
    } else if (arg == "--heartbeat-ms") {
      opts.heartbeat_ms = static_cast<unsigned>(uint_value(1, 60000));
    } else if (arg == "--worker-timeout-ms") {
      opts.worker_timeout_ms = static_cast<unsigned>(uint_value(1, 3600000));
    } else if (arg == "--backoff-ms") {
      opts.backoff_ms = static_cast<unsigned>(uint_value(1, 60000));
    } else if (arg == "--journal-base") {
      opts.journal_base = value();
    } else if (arg == "--no-journal") {
      no_journal = true;
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--checkpoint-every") {
      const char* v = value();
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltshard: --checkpoint-every expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      opts.cell.checkpoint_every = static_cast<Cycle>(n);
    } else if (arg == "--cache") {
      opts.cell.cache_dir = value();
    } else if (arg == "--no-cache") {
      opts.cell.cache_dir.clear();
    } else if (arg == "--force") {
      opts.cell.force = true;
    } else if (arg == "--max-retries") {
      opts.cell.max_retries = static_cast<unsigned>(uint_value(0, 100));
    } else if (arg == "--cell-cycle-limit") {
      const char* v = value();
      char* end = nullptr;
      unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "vltshard: --cell-cycle-limit expects a positive "
                     "integer, got '%s'\n", v);
        return 2;
      }
      opts.cell.cell_cycle_limit = static_cast<Cycle>(n);
    } else if (arg == "--format") {
      format = value();
      if (format != "json" && format != "csv") {
        std::fprintf(stderr, "vltshard: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--stats-out") {
      stats_path = value();
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vltshard: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (no_journal) opts.journal_base.clear();
  if (opts.resume && opts.journal_base.empty()) {
    std::fprintf(stderr, "vltshard: --resume needs journals "
                         "(drop --no-journal)\n");
    return 2;
  }
  if (opts.cell.checkpoint_every > 0 && opts.journal_base.empty()) {
    std::fprintf(stderr, "vltshard: --checkpoint-every needs journals "
                         "(drop --no-journal)\n");
    return 2;
  }

  std::string grid_err;
  std::optional<campaign::SweepSpec> spec =
      campaign::resolve_grid(grid, &grid_err);
  if (!spec) {
    std::fprintf(stderr, "vltshard: %s\n", grid_err.c_str());
    return 2;
  }

  if (list_only) {
    for (const campaign::Cell& cell : spec->cells())
      std::printf("%s\n", cell.key().to_string().c_str());
    return 0;
  }

  if (opts.worker_binary.empty()) {
    std::fprintf(stderr, "vltshard: --worker-binary is required\n");
    usage();
    return 2;
  }

  // Workers must resolve the *identical* grid (the hello handshake
  // verifies it), so the axis flags are forwarded verbatim. Cell policy
  // is forwarded too: workers consult the same cache and apply the same
  // budgets, which is what keeps the merged bytes equal to serial
  // vltsweep's.
  opts.worker_args = {"--workloads", grid.workloads,
                      "--variants",  grid.variants,
                      "--isa",       grid.isas};
  if (!grid.configs.empty()) {
    opts.worker_args.push_back("--configs");
    opts.worker_args.push_back(grid.configs);
  }
  if (grid.no_skip) opts.worker_args.push_back("--no-skip");
  if (opts.cell.cache_dir.empty()) {
    opts.worker_args.push_back("--no-cache");
  } else {
    opts.worker_args.push_back("--cache");
    opts.worker_args.push_back(opts.cell.cache_dir);
  }
  if (opts.cell.force) opts.worker_args.push_back("--force");
  if (opts.cell.max_retries != 0) {
    opts.worker_args.push_back("--max-retries");
    opts.worker_args.push_back(std::to_string(opts.cell.max_retries));
  }
  if (opts.cell.cell_cycle_limit) {
    opts.worker_args.push_back("--cell-cycle-limit");
    opts.worker_args.push_back(std::to_string(*opts.cell.cell_cycle_limit));
  }
  if (opts.cell.checkpoint_every > 0) {
    opts.worker_args.push_back("--checkpoint-every");
    opts.worker_args.push_back(std::to_string(opts.cell.checkpoint_every));
  }

  if (!opts.quiet)
    opts.progress = [](std::size_t done, std::size_t total,
                       const campaign::RunKey& key, const std::string& how) {
      std::fprintf(stderr, "[%3zu/%zu] %-40s (%s)\n", done, total,
                   key.to_string().c_str(), how.c_str());
    };

  shard::ShardCoordinator coordinator(opts);
  campaign::RunSet set;
  try {
    set = coordinator.run(*spec);
  } catch (const vlt::SimError& e) {
    if (e.kind() == ErrorKind::kConfig) {
      // Foreign resume journal or a worker that resolved a different
      // grid: a usage-class failure, exit 2 like vltsweep's.
      std::fprintf(stderr, "vltshard: %s\n", e.message().c_str());
      return 2;
    }
    throw;
  }

  if (!stats_path.empty()) {
    std::ofstream stats(stats_path, std::ios::trunc);
    if (!stats) {
      std::fprintf(stderr, "vltshard: cannot write %s\n", stats_path.c_str());
      return 1;
    }
    stats << coordinator.stats_snapshot().to_json().dump(1) << "\n";
  }

  std::string output = format == "csv" ? set.to_csv()
                                       : set.to_json().dump(1) + "\n";
  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "vltshard: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << output;
  }

  if (!opts.quiet) {
    std::string resumed;
    if (set.resumed() > 0)
      resumed = ", " + std::to_string(set.resumed()) + " resumed";
    std::fprintf(stderr,
                 "vltshard: %zu cells (%zu executed, %zu from cache%s)\n",
                 set.size(), set.cache_misses(), set.cache_hits(),
                 resumed.c_str());
  }
  if (!set.all_ok()) {
    std::fprintf(stderr, "vltshard: %zu of %zu cells FAILED:\n",
                 set.failures(), set.size());
    for (const machine::RunResult& r : set.results())
      if (!r.ok())
        std::fprintf(stderr, "  %s/%s/%s [%s] %s\n", r.workload.c_str(),
                     r.config.c_str(), r.variant.c_str(),
                     machine::run_status_name(r.status), r.error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const vlt::SimError& e) {
    std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", e.file(), e.line(),
                 e.message().c_str());
    return 3;
  }
}
