// Quickstart: write a small vector kernel in the embedded assembler, run
// it on the base 8-lane machine and on a 2-thread VLT partition, and
// compare cycle counts.
//
//   $ ./build/examples/quickstart
//
// The kernel is a SAXPY with a deliberately short vector length (6), the
// kind of loop that underutilizes an 8-lane machine (paper §3) — VLT runs
// two of them side by side on 4 lanes each.
#include <cstdio>
#include <optional>

#include "machine/simulator.hpp"
#include "workloads/kernel_util.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace vlt;

// A workload with many independent short-vector SAXPY rows:
//   for each row r: y[r][:] += a * x[r][:]   (row length 12)
class ShortSaxpy : public workloads::Workload {
 public:
  static constexpr unsigned kRows = 256;
  static constexpr unsigned kLen = 6;
  static constexpr unsigned kSweeps = 8;  // data reuse keeps the L2 warm

  ShortSaxpy() {
    func::AddressAllocator alloc;
    x_ = alloc.alloc_words(kRows * kLen);
    y_ = alloc.alloc_words(kRows * kLen);
  }

  std::string name() const override { return "short-saxpy"; }

  void init_memory(func::FuncMemory& mem) const override {
    for (unsigned i = 0; i < kRows * kLen; ++i) {
      mem.write_f64(x_ + 8 * i, 1.0 + i % 7);
      mem.write_f64(y_ + 8 * i, 0.5 * (i % 5));
    }
  }

  bool supports(workloads::Variant::Kind kind) const override {
    return kind == workloads::Variant::Kind::kBase ||
           kind == workloads::Variant::Kind::kVectorThreads;
  }

  machine::ParallelProgram build(
      const workloads::Variant& variant) const override {
    unsigned nthreads =
        variant.kind == workloads::Variant::Kind::kBase ? 1 : variant.nthreads;

    machine::Phase phase;
    phase.label = "saxpy-rows";
    phase.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                               : machine::PhaseMode::kVectorThreads;
    phase.vlt_opportunity = true;
    for (unsigned t = 0; t < nthreads; ++t)
      phase.programs.push_back(thread_program(t, nthreads));

    machine::ParallelProgram prog;
    prog.name = name();
    prog.phases.push_back(std::move(phase));
    return prog;
  }

  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override {
    for (unsigned i = 0; i < kRows * kLen; ++i) {
      double expect = 0.5 * (i % 5);
      for (unsigned s = 0; s < kSweeps; ++s) expect += 2.5 * (1.0 + i % 7);
      if (mem.read_f64(y_ + 8 * i) != expect)
        return "mismatch at element " + std::to_string(i);
    }
    return std::nullopt;
  }

 private:
  isa::Program thread_program(unsigned tid, unsigned nthreads) const {
    isa::ProgramBuilder b("saxpy-t" + std::to_string(tid));
    auto range = workloads::chunk_of(kRows, tid, nthreads);

    constexpr RegIdx r = 1, rEnd = 2, vl = 3, xP = 16, yP = 17, n = 4,
                     a = 32, sweep = 5;
    b.li_f64(a, 2.5);
    b.li(sweep, kSweeps);
    auto sweep_top = b.label();
    b.bind(sweep_top);
    b.li(r, range.begin);
    b.li(rEnd, range.end);
    b.li(xP, static_cast<std::int64_t>(x_ + 8 * kLen * range.begin));
    b.li(yP, static_cast<std::int64_t>(y_ + 8 * kLen * range.begin));
    auto loop = b.label();
    auto done = b.label();
    b.bind(loop);
    b.bge(r, rEnd, done);
    b.li(n, kLen);
    b.setvl(vl, n);     // short VL (6)
    b.vload(1, xP);     // x row
    b.vload(2, yP);     // y row
    b.vfma(2, 1, a, isa::kFlagSrc2Scalar);
    b.vstore(2, yP);
    b.addi(xP, xP, kLen * 8);
    b.addi(yP, yP, kLen * 8);
    b.addi(r, r, 1);
    b.jump(loop);
    b.bind(done);
    // A thread re-reads only its own rows, so no barrier is needed
    // between sweeps.
    b.addi(sweep, sweep, -1);
    b.bne(sweep, 0, sweep_top);
    b.halt();
    return b.build();
  }

  Addr x_ = 0, y_ = 0;
};

}  // namespace

int main() {
  ShortSaxpy saxpy;

  std::printf("short-saxpy: %u rows of VL-%u SAXPY\n\n", ShortSaxpy::kRows,
              ShortSaxpy::kLen);

  machine::RunResult base = machine::Simulator(machine::MachineConfig::base())
                                .run(saxpy, workloads::Variant::base());
  std::printf("base (1 thread, 8 lanes):      %8llu cycles  [%s]\n",
              static_cast<unsigned long long>(base.cycles),
              base.verified ? "verified" : base.error.c_str());

  machine::RunResult vlt2 =
      machine::Simulator(machine::MachineConfig::v2_cmp())
          .run(saxpy, workloads::Variant::vector_threads(2));
  std::printf("VLT  (2 threads, 4 lanes each): %8llu cycles  [%s]  "
              "speedup %.2fx\n",
              static_cast<unsigned long long>(vlt2.cycles),
              vlt2.verified ? "verified" : vlt2.error.c_str(),
              static_cast<double>(base.cycles) / vlt2.cycles);

  machine::RunResult vlt4 =
      machine::Simulator(machine::MachineConfig::v4_cmp())
          .run(saxpy, workloads::Variant::vector_threads(4));
  std::printf("VLT  (4 threads, 2 lanes each): %8llu cycles  [%s]  "
              "speedup %.2fx\n",
              static_cast<unsigned long long>(vlt4.cycles),
              vlt4.verified ? "verified" : vlt4.error.c_str(),
              static_cast<double>(base.cycles) / vlt4.cycles);
  return 0;
}
