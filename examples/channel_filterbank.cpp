// Telecom-style multi-channel FIR filter bank — the kind of workload the
// paper's introduction cites for data-parallel processors in
// telecommunications (multi-channel DSP with short per-channel vectors).
//
// 64 independent channels each convolve 160 samples with an 8-tap filter:
// the vector length is the tap count (8), far below the 8-lane machine's
// appetite, so a single thread leaves most datapath slots idle. VLT runs
// 4 channels' worth of work side by side on 2 lanes each.
//
//   $ ./build/examples/channel_filterbank
#include <cstdio>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "machine/simulator.hpp"
#include "workloads/kernel_util.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace vlt;

class FilterBank : public workloads::Workload {
 public:
  static constexpr unsigned kChannels = 64;
  static constexpr unsigned kTaps = 8;
  static constexpr unsigned kSamples = 160;  // per channel, plus tap headroom

  FilterBank() {
    func::AddressAllocator alloc;
    x_ = alloc.alloc_words(kChannels * (kSamples + kTaps));
    coeff_ = alloc.alloc_words(kChannels * kTaps);
    y_ = alloc.alloc_words(kChannels * kSamples);

    Xorshift64 rng(0xF11E2);
    in_.resize(kChannels * (kSamples + kTaps));
    co_.resize(kChannels * kTaps);
    for (auto& v : in_)
      v = (static_cast<double>(rng.next_below(17)) - 8.0) * 0.125;
    for (auto& v : co_)
      v = (static_cast<double>(rng.next_below(9)) - 4.0) * 0.0625;

    // Golden: y[c][i] = sum_t coeff[c][t] * x[c][i+t], summed in ascending
    // tap order exactly like the kernel's vfredsum.
    golden_.resize(kChannels * kSamples);
    for (unsigned c = 0; c < kChannels; ++c)
      for (unsigned i = 0; i < kSamples; ++i) {
        double acc = 0.0;
        for (unsigned t = 0; t < kTaps; ++t)
          acc += co_[c * kTaps + t] * in_[c * (kSamples + kTaps) + i + t];
        golden_[c * kSamples + i] = acc;
      }
  }

  std::string name() const override { return "filterbank"; }

  void init_memory(func::FuncMemory& mem) const override {
    mem.write_block_f64(x_, in_);
    mem.write_block_f64(coeff_, co_);
  }

  bool supports(workloads::Variant::Kind kind) const override {
    return kind == workloads::Variant::Kind::kBase ||
           kind == workloads::Variant::Kind::kVectorThreads;
  }

  machine::ParallelProgram build(
      const workloads::Variant& variant) const override {
    unsigned nthreads =
        variant.kind == workloads::Variant::Kind::kBase ? 1 : variant.nthreads;
    machine::Phase phase;
    phase.label = "fir-channels";
    phase.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                               : machine::PhaseMode::kVectorThreads;
    phase.vlt_opportunity = true;
    for (unsigned t = 0; t < nthreads; ++t)
      phase.programs.push_back(thread_program(t, nthreads));
    machine::ParallelProgram prog;
    prog.name = name();
    prog.phases.push_back(std::move(phase));
    return prog;
  }

  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override {
    for (unsigned k = 0; k < kChannels * kSamples; ++k)
      if (mem.read_f64(y_ + 8 * k) != golden_[k])
        return "filterbank: y[" + std::to_string(k) + "] mismatch";
    return std::nullopt;
  }

 private:
  isa::Program thread_program(unsigned tid, unsigned nthreads) const {
    isa::ProgramBuilder b("fir-t" + std::to_string(tid));
    auto range = workloads::chunk_of(kChannels, tid, nthreads);
    constexpr RegIdx c = 1, cEnd = 2, i = 3, iEnd = 4, vl = 5, n = 6,
                     xP = 16, cP = 17, yP = 18, acc = 33;
    b.li(c, range.begin);
    b.li(cEnd, range.end);
    b.li(xP, static_cast<std::int64_t>(x_ + 8 * (kSamples + kTaps) *
                                                range.begin));
    b.li(cP, static_cast<std::int64_t>(coeff_ + 8 * kTaps * range.begin));
    b.li(yP, static_cast<std::int64_t>(y_ + 8 * kSamples * range.begin));
    auto ch_top = b.label();
    auto ch_done = b.label();
    b.bind(ch_top);
    b.bge(c, cEnd, ch_done);
    b.li(n, kTaps);
    b.setvl(vl, n);     // VL 8 — the tap count
    b.vload(2, cP);     // channel coefficients, loaded once
    b.li(i, 0);
    b.li(iEnd, kSamples);
    auto s_top = b.label();
    b.bind(s_top);
    b.vload(1, xP);           // sliding input window
    b.vfmul(3, 1, 2);
    b.vfredsum(acc, 3);
    b.store(yP, acc);
    b.addi(xP, xP, 8);        // slide by one sample
    b.addi(yP, yP, 8);
    b.addi(i, i, 1);
    b.blt(i, iEnd, s_top);
    b.addi(xP, xP, kTaps * 8);  // skip the tap headroom to the next channel
    b.addi(cP, cP, kTaps * 8);
    b.addi(c, c, 1);
    b.jump(ch_top);
    b.bind(ch_done);
    b.halt();
    return b.build();
  }

  Addr x_ = 0, coeff_ = 0, y_ = 0;
  std::vector<double> in_, co_, golden_;
};

}  // namespace

int main() {
  FilterBank bank;
  std::printf("filter bank: %u channels x %u samples, %u-tap FIR (VL %u)\n\n",
              FilterBank::kChannels, FilterBank::kSamples, FilterBank::kTaps,
              FilterBank::kTaps);

  machine::RunResult base = machine::Simulator(machine::MachineConfig::base())
                                .run(bank, workloads::Variant::base());
  std::printf("base (1 thread, 8 lanes):        %8llu cycles  [%s]\n",
              static_cast<unsigned long long>(base.cycles),
              base.verified ? "verified" : base.error.c_str());
  for (unsigned k : {2u, 4u}) {
    auto cfg = k == 2 ? machine::MachineConfig::v2_cmp()
                      : machine::MachineConfig::v4_cmp();
    machine::RunResult r =
        machine::Simulator(cfg).run(bank, workloads::Variant::vector_threads(k));
    std::printf("VLT  (%u threads, %u lanes each):  %8llu cycles  [%s]  "
                "speedup %.2fx\n",
                k, 8 / k, static_cast<unsigned long long>(r.cycles),
                r.verified ? "verified" : r.error.c_str(),
                static_cast<double>(base.cycles) / r.cycles);
  }
  return 0;
}
