// Writing your own kernel against the vltsim public API, start to finish:
// assemble a program with ProgramBuilder, inspect it with the
// disassembler, run it on a machine, and read results out of the
// simulated memory. The kernel is a masked vector conditional — the
// compare/merge idiom a vectorizing compiler emits for
//
//   for (i) y[i] = (x[i] < 0) ? -x[i] : x[i];     // vector |x|
//
//   $ ./build/examples/custom_kernel
#include <cstdio>

#include "isa/disasm.hpp"
#include "machine/phase.hpp"
#include "machine/processor.hpp"
#include "workloads/kernel_util.hpp"

using namespace vlt;

int main() {
  constexpr unsigned kN = 200;
  constexpr Addr kX = 0x10000, kY = 0x20000;

  // --- assemble the kernel ---
  isa::ProgramBuilder b("vector-abs");
  constexpr RegIdx n = 1, vl = 2, scr = 3, xP = 16, yP = 17, zero = 48;
  b.li(zero, 0);
  b.li(xP, kX);
  b.li(yP, kY);
  b.li(n, kN);
  workloads::strip_mine(b, n, vl, scr, {xP, yP}, [&] {
    b.vload(1, xP);                           // x chunk
    b.vbcast(4, zero);                        // zeros
    b.vsub(2, 4, 1);                          // -x
    b.vcmplt(1, zero, isa::kFlagSrc2Scalar);  // mask = x < 0
    b.vmerge(3, 2, 1);                        // mask ? -x : x
    b.vstore(3, yP);
  });
  b.halt();
  isa::Program prog = b.build();

  std::printf("=== disassembly ===\n%s\n", isa::disassemble(prog).c_str());

  // --- build a machine, load data, run ---
  machine::Processor proc(machine::MachineConfig::base());
  for (unsigned i = 0; i < kN; ++i)
    proc.memory().write_i64(kX + 8 * i, static_cast<std::int64_t>(i % 7) - 3);

  machine::Phase phase;
  phase.label = "vector-abs";
  phase.mode = machine::PhaseMode::kSerial;
  phase.programs.push_back(prog);
  Cycle cycles = proc.run_phase(phase);

  // --- check results ---
  unsigned errors = 0;
  for (unsigned i = 0; i < kN; ++i) {
    std::int64_t x = (static_cast<std::int64_t>(i % 7)) - 3;
    std::int64_t want = x < 0 ? -x : x;
    if (proc.memory().read_i64(kY + 8 * i) != want) ++errors;
  }
  std::printf("ran %u elements in %llu cycles (%u errors)\n", kN,
              static_cast<unsigned long long>(cycles), errors);
  std::printf("vector unit issued %llu instructions, %llu element ops\n",
              static_cast<unsigned long long>(
                  proc.vector_unit()->instructions_issued()),
              static_cast<unsigned long long>(
                  proc.vector_unit()->element_ops()));
  return errors == 0 ? 0 : 1;
}
