// Design-space exploration: area vs performance for every VLT scalar-unit
// organization, on one short-vector workload — the §4.2/§7.1 trade-off in
// a single table. "Perf/area" shows why the paper recommends V4-CMT: near
// V4-CMP performance at a third of its area overhead.
//
// Built on the campaign engine: the whole design space is declared as one
// SweepSpec and executed across a thread pool (VLTSWEEP_THREADS to
// override, VLTSWEEP_CACHE for a result cache).
//
//   $ ./build/examples/design_space_explorer [workload]
#include <cstdio>
#include <string>

#include "campaign/campaign.hpp"
#include "machine/area_model.hpp"

using namespace vlt;
using workloads::Variant;

namespace {

struct Point {
  const char* name;
  unsigned threads;
};
const Point kPoints[] = {{"V2-SMT", 2}, {"V2-CMP", 2}, {"V2-CMP-h", 2},
                         {"V4-SMT", 4}, {"V4-CMT", 4}, {"V4-CMP", 4},
                         {"V4-CMP-h", 4}};

}  // namespace

int main(int argc, char** argv) {
  std::string app = argc > 1 ? argv[1] : "mpenc";
  auto workload = workloads::make_workload(app);
  if (!workload->supports(Variant::Kind::kVectorThreads)) {
    std::fprintf(stderr,
                 "%s has no vector-thread decomposition; pick one of mpenc, "
                 "trfd, multprec, bt\n",
                 app.c_str());
    return 1;
  }

  campaign::SweepSpec spec;
  spec.add(machine::MachineConfig::base(), app, Variant::base());
  for (const Point& pt : kPoints)
    spec.add(machine::MachineConfig::by_name(pt.name), app,
             Variant::vector_threads(pt.threads));
  campaign::RunSet results = campaign::Campaign().run(spec);

  machine::AreaModel area;
  Cycle base = results.cycles(app, "base", "base");
  std::printf("workload: %s   base: %llu cycles, %.1f mm^2\n\n", app.c_str(),
              static_cast<unsigned long long>(base), area.base_area());
  std::printf("%-10s %8s %10s %10s %12s %12s\n", "config", "threads",
              "cycles", "speedup", "area +%", "speedup/area");

  for (const Point& pt : kPoints) {
    const machine::RunResult& r = results.at(
        {app, pt.name, Variant::vector_threads(pt.threads).to_string()});
    if (!r.verified) {
      std::printf("%-10s verification failed: %s\n", pt.name,
                  r.error.c_str());
      continue;
    }
    double speedup = static_cast<double>(base) / static_cast<double>(r.cycles);
    double pct = area.pct_increase(machine::MachineConfig::by_name(pt.name));
    double ratio = speedup / (1.0 + pct / 100.0);
    std::printf("%-10s %8u %10llu %9.2fx %11.1f%% %12.2f\n", pt.name,
                pt.threads, static_cast<unsigned long long>(r.cycles), speedup,
                pct, ratio);
  }
  std::printf("\nThe paper's conclusion (§7.1): the hybrid V4-CMT reaches "
              "replicated-SU performance at a\nfraction of the area — watch "
              "the last column.\n");
  return 0;
}
